// Figure 20 — Subscriber's throughput.
//
// Paper §5.3: "Here the publishers try to flood the subscriber (10000
// events published per each publisher). Every second, we measure the
// number of events that are received; during 50 seconds." Series:
// {JXTA-WIRE, SR-JXTA, SR-TPS} x {1,4} publishers.
//
// Expected shape (paper): JXTA-WIRE's receive rate tops the SR layers
// (which pay dedup + multi-adv bookkeeping); the receive rate saturates
// (the subscriber cannot absorb the offered flood); with more publishers
// the aggregate rate "remains quite the same" — the per-publisher share
// drops roughly by the publisher count.
//
// Scaling note: our substrate moves events ~3 orders of magnitude faster
// than JXTA 1.0 on a 440 MHz Ultra 10, so the measurement window is 50
// buckets of 100 ms (the paper: 50 buckets of 1 s), and publishers offer
// events continuously for the whole window — in the paper the 10000-event
// floods outlasted its 50 s window (at ~8 ev/s they could not finish);
// ours would drain 10000 events in ~2 s, ending the saturation regime the
// figure is about. Continuous offering preserves that regime.
#include "obs/timeline.h"
#include "support/harness.h"

using namespace p2p;
using namespace p2p::bench;

namespace {

int g_buckets = 50;                      // paper: 50 (seconds)
constexpr std::int64_t kBucketMs = 100;  // paper: 1000 (see note above)
// Aggregate offered load. One unthrottled publisher thread sustains
// ~50-60k events/s end to end on this substrate (the synchronous publish
// path is the limiter, exactly as in the paper's JXTA); four concurrent
// unthrottled publishers would grow an unbounded in-flight backlog. We
// offer a fixed 30k/s aggregate — enough to keep the multi-peer
// configurations at their processing limit — and report offered vs
// received so saturation is visible rather than assumed.
constexpr int kAggregateOfferedPerSec = 30000;

struct SeriesResult {
  std::string label;
  std::vector<std::size_t> per_bucket;  // events received per bucket
  double mean_rate = 0;                 // events per bucket, averaged
  std::uint64_t total = 0;
};

// With a non-empty `timeline_path`, the series also exports the subscriber
// peer's completed traces + flight records as a Chrome-trace timeline
// (Perfetto-loadable per-stage spans; only TPS-layer series carry traces).
template <typename MakePublisher, typename MakeSubscriber>
SeriesResult run_series(const std::string& label, int n_publishers,
                        MakePublisher make_publisher,
                        MakeSubscriber make_subscriber,
                        const std::string& timeline_path = "") {
  Lan lan(/*latency_ms=*/1);
  jxta::Peer& sub_peer = lan.add_peer("subscriber");
  std::vector<jxta::Peer*> pub_peers;
  for (int i = 0; i < n_publishers; ++i) {
    pub_peers.push_back(&lan.add_peer("pub" + std::to_string(i)));
  }
  const auto shared_adv = lan.make_shared_adv("SkiRental");

  util::RateSeries series(kBucketMs);
  std::mutex series_mu;
  auto subscriber = make_subscriber(sub_peer, shared_adv);
  subscriber->set_on_receive([&](std::int64_t t_ms) {
    const std::lock_guard lock(series_mu);
    series.record(t_ms);
  });

  std::vector<std::unique_ptr<Driver>> publishers;
  for (jxta::Peer* peer : pub_peers) {
    publishers.push_back(make_publisher(*peer, shared_adv));
  }

  // Flood from one thread per publisher (the paper's publishers are
  // separate machines) for the whole measurement window.
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  const auto per_publisher_interval = std::chrono::microseconds(
      1'000'000LL * n_publishers / kAggregateOfferedPerSec);
  for (auto& publisher : publishers) {
    threads.emplace_back([&stop, &publisher, per_publisher_interval] {
      auto next = std::chrono::steady_clock::now();
      for (int i = 0; !stop; ++i) {
        publisher->publish(i);
        next += per_publisher_interval;
        std::this_thread::sleep_until(next);
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(kBucketMs * g_buckets));
  stop = true;
  for (auto& t : threads) t.join();
  // Allow in-flight deliveries to settle before tearing the LAN down.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  if (!timeline_path.empty()) {
    const auto traces = sub_peer.tracer().recent();
    const bool ok = obs::write_timeline_file(timeline_path, traces,
                                             obs::flight::snapshot());
    std::cout << "# " << label << " timeline (" << traces.size()
              << " traces): " << (ok ? timeline_path : "WRITE FAILED")
              << "\n";
  }

  SeriesResult result;
  result.label = label;
  {
    const std::lock_guard lock(series_mu);
    result.per_bucket = series.buckets();
    result.total = series.total();
  }
  result.per_bucket.resize(static_cast<std::size_t>(g_buckets), 0);  // pad/trim to the window
  if (result.per_bucket.size() > static_cast<std::size_t>(g_buckets)) result.per_bucket.resize(static_cast<std::size_t>(g_buckets));
  double sum = 0;
  for (const auto n : result.per_bucket) sum += static_cast<double>(n);
  result.mean_rate = sum / g_buckets;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  if (smoke_mode(argc, argv)) g_buckets = 5;
  std::cout << "# Figure 20 reproduction: subscriber's throughput "
               "(events received per 100ms bucket)\n"
            << "# paper setup: publishers flood 10000 events each; "
               "{JXTA-WIRE, SR-JXTA, SR-TPS} x {1,4} publishers\n"
            << "# plus SR-TPS-FAST: the v2 batching + encode-cache "
               "publish pipeline (beyond the paper)\n";

  srjxta::SrConfig sr_config;
  sr_config.adv_search_timeout = std::chrono::milliseconds(300);
  sr_config.dedup_cache_size = 1 << 20;  // must span the whole flood
  const tps::TpsConfig tps_config =
      tps::TpsConfig::Builder()
          .adv_search_timeout(std::chrono::milliseconds(300))
          .dedup_cache(1 << 20)
          .build();
  const tps::TpsConfig tps_fast_config =
      fast_tps_config(std::chrono::milliseconds(300));
  // --recv-pool: the subscribing TPS session dispatches through the
  // delivery executor instead of inline on the wire listener thread. With
  // the no-op callbacks the drivers register, the figure must stay within
  // noise of the synchronous path; CI runs both to prove it.
  const bool recv_pool = has_flag(argc, argv, "--recv-pool");
  // --timeline: the SR-TPS series export the subscriber's span timeline.
  const bool timeline = has_flag(argc, argv, "--timeline");
  tps::TpsConfig tps_sub_config = tps_config;
  if (recv_pool) {
    tps_sub_config.delivery_workers = 2;
    tps_sub_config.delivery_queue_capacity = 8192;
  }
  std::cout << "# subscriber delivery executor: "
            << (recv_pool ? "on (--recv-pool)" : "off") << "\n";

  std::vector<SeriesResult> results;
  for (const int pubs : {1, 4}) {
    const std::string suffix =
        " " + std::to_string(pubs) + (pubs == 1 ? " pub" : " pubs");
    results.push_back(run_series(
        "JXTA-WIRE" + suffix, pubs,
        [](jxta::Peer& p, const jxta::PeerGroupAdvertisement& adv) {
          return std::make_unique<WireDriver>(p, adv, kPaperMessageBytes);
        },
        [](jxta::Peer& p, const jxta::PeerGroupAdvertisement& adv)
            -> std::unique_ptr<Driver> {
          return std::make_unique<WireDriver>(p, adv, kPaperMessageBytes);
        }));
    results.push_back(run_series(
        "SR-JXTA" + suffix, pubs,
        [&](jxta::Peer& p, const jxta::PeerGroupAdvertisement&) {
          return std::make_unique<SrDriver>(p, "SkiRentalSR",
                                            kPaperMessageBytes, sr_config);
        },
        [&](jxta::Peer& p, const jxta::PeerGroupAdvertisement&)
            -> std::unique_ptr<Driver> {
          return std::make_unique<SrDriver>(p, "SkiRentalSR",
                                            kPaperMessageBytes, sr_config);
        }));
    results.push_back(run_series(
        "SR-TPS" + suffix, pubs,
        [&](jxta::Peer& p, const jxta::PeerGroupAdvertisement&) {
          return std::make_unique<TpsDriver>(p, kPaperMessageBytes,
                                             tps_config);
        },
        [&](jxta::Peer& p, const jxta::PeerGroupAdvertisement&)
            -> std::unique_ptr<Driver> {
          return std::make_unique<TpsDriver>(p, kPaperMessageBytes,
                                             tps_sub_config);
        },
        timeline ? "TIMELINE_fig20_sr_tps_" + std::to_string(pubs) +
                       "pub.json"
                 : ""));
    results.push_back(run_series(
        "SR-TPS-FAST" + suffix, pubs,
        [&](jxta::Peer& p, const jxta::PeerGroupAdvertisement&) {
          return std::make_unique<TpsDriver>(p, kPaperMessageBytes,
                                             tps_fast_config, "SR-TPS-FAST");
        },
        [&](jxta::Peer& p, const jxta::PeerGroupAdvertisement&)
            -> std::unique_ptr<Driver> {
          // The receive path is identical; the fast pipeline lives on the
          // publisher side.
          return std::make_unique<TpsDriver>(p, kPaperMessageBytes,
                                             tps_sub_config);
        }));
  }

  // Wire-codec comparison (beyond the paper): one publisher flooding
  // dynamic events under the XML codec vs the negotiated binary codec.
  // Under flood the subscriber pays a full payload decode per event, so
  // the codec's decode share of the receive path shows up directly.
  auto dyn_builder = tps::TpsConfig::Builder()
                         .adv_search_timeout(std::chrono::milliseconds(300))
                         .dedup_cache(1 << 20);
  const tps::TpsConfig dyn_xml_config = dyn_builder.build();
  const tps::TpsConfig dyn_bin_config = dyn_builder.prefer_binary().build();
  const std::pair<const char*, const tps::TpsConfig*> codec_series[] = {
      {"SR-TPS-XML 1 pub", &dyn_xml_config},
      {"SR-TPS-BIN 1 pub", &dyn_bin_config}};
  for (const auto& [label, config] : codec_series) {
    results.push_back(run_series(
        label, 1,
        [&](jxta::Peer& p, const jxta::PeerGroupAdvertisement&) {
          return std::make_unique<DynTpsDriver>(p, kPaperMessageBytes,
                                                *config, label);
        },
        [&](jxta::Peer& p, const jxta::PeerGroupAdvertisement&)
            -> std::unique_ptr<Driver> {
          return std::make_unique<DynTpsDriver>(p, kPaperMessageBytes,
                                                *config, label);
        }));
  }

  std::cout << "\nbucket";
  for (const auto& r : results) std::cout << "\t" << r.label;
  std::cout << "\n";
  for (int b = 0; b < g_buckets; ++b) {
    std::cout << b + 1;
    for (const auto& r : results) {
      std::cout << "\t" << r.per_bucket[static_cast<std::size_t>(b)];
    }
    std::cout << "\n";
  }

  const double offered_per_bucket =
      static_cast<double>(kAggregateOfferedPerSec) * kBucketMs / 1000.0;
  std::cout << "\n# mean receive rate (events per bucket; offered "
            << offered_per_bucket << "/bucket) and totals\n";
  for (const auto& r : results) {
    std::cout << r.label << ": mean=" << r.mean_rate
              << " total=" << r.total << " (utilisation "
              << r.mean_rate / offered_per_bucket << ")\n";
  }

  const auto mean = [&](const std::string& label) {
    for (const auto& r : results) {
      if (r.label == label) return r.mean_rate;
    }
    return 0.0;
  };
  const double wire1 = mean("JXTA-WIRE 1 pub");
  const double sr1 = mean("SR-JXTA 1 pub");
  const double tps1 = mean("SR-TPS 1 pub");
  const double fast1 = mean("SR-TPS-FAST 1 pub");
  const double wire4 = mean("JXTA-WIRE 4 pubs");
  const double sr4 = mean("SR-JXTA 4 pubs");
  const double tps4 = mean("SR-TPS 4 pubs");
  const double fast4 = mean("SR-TPS-FAST 4 pubs");
  // The paper's 1-publisher case was already saturated (JXTA could not
  // absorb even one flood); our substrate only saturates in the 4-publisher
  // configuration, so the layer ordering is checked there. In unsaturated
  // regimes all layers deliver the offered load and differences are noise
  // (<1%).
  std::cout << "\n# shape checks (paper §5.3: wire ~7.8 ev/s vs 6.1/6.0 "
               "for SR-JXTA/SR-TPS under saturation; aggregate stays "
               "similar with more publishers)\n"
            << "saturated_wire_rate_tops_sr_layers (4 pubs): "
            << (wire4 >= sr4 && wire4 >= tps4 ? "yes" : "NO") << " ("
            << wire4 << " vs " << sr4 << "/" << tps4 << ")\n"
            << "sr_layers_close (1 pub): "
            << (sr1 > 0 ? std::abs(tps1 - sr1) / sr1 : 0) << "\n"
            << "unsaturated_layers_within_1pct (1 pub): "
            << (std::abs(wire1 - tps1) / wire1 < 0.01 &&
                        std::abs(wire1 - sr1) / wire1 < 0.01
                    ? "yes"
                    : "NO")
            << "\n"
            << "per_publisher_share_drops_with_4_pubs (tps): "
            << (tps1 > 0 ? tps4 / 4 / tps1 : 0)
            << " (paper: ~1/3 to 1/4 each)\n"
            << "\n# fast-pipeline checks (beyond the paper)\n"
            << "fast_vs_plain_1pub (SR-TPS-FAST / SR-TPS): "
            << (tps1 > 0 ? fast1 / tps1 : 0) << "\n"
            << "fast_vs_plain_4pubs: " << (tps4 > 0 ? fast4 / tps4 : 0)
            << "\n";
  const double dyn_xml = mean("SR-TPS-XML 1 pub");
  const double dyn_bin = mean("SR-TPS-BIN 1 pub");
  std::cout << "\n# wire-codec checks (beyond the paper: dynamic events, "
               "xml vs negotiated binary; per-payload 2x is pinned by "
               "codec_bench)\n"
            << "codec_receive_rate_ratio_1pub (SR-TPS-BIN / SR-TPS-XML): "
            << (dyn_xml > 0 ? dyn_bin / dyn_xml : 0) << "\n";
  p2p::bench::write_metrics_dump("fig20_subscriber_throughput");
  return 0;
}
