// The ski-rental application written DIRECTLY against the JXTA substrate
// (the paper's §4.4: "Renting skis with JXTA") — the other half of the
// programming-effort comparison.
//
// Functionally identical to examples/ski_rental.cpp's core, but note what
// the application programmer now owns:
//   * hand-rolled serialization of SkiRental into bytes (and the matching
//     parse, which the compiler cannot check — get a field order wrong and
//     you find out at runtime),
//   * assembling AdvertisementsCreator + AdvertisementsFinder +
//     WireServiceFinder (+ SrSession glue) by hand,
//   * no type hierarchy: one topic string, no subtype dispatch,
//   * no per-callback exception routing.
//
// bench/table_programming_effort compares this file's footprint (plus the
// srjxta support library a JXTA user must write) against the TPS version.
//
// Run: ./build/examples/ski_rental_jxta
#include <iostream>
#include <thread>

#include "jxta/peer.h"
#include "net/inproc_transport.h"
#include "srjxta/sr_session.h"

using namespace p2p;

namespace {

// What EventTraits<SkiRental> gave us for free in the TPS version: a
// hand-written codec. Nothing stops a publisher and a subscriber from
// disagreeing about this format — that is the paper's type-safety point.
struct SkiRentalRecord {
  std::string shop;
  std::string brand;
  float price = 0;
  float days = 0;
};

util::Bytes encode_ski_rental(const SkiRentalRecord& r) {
  util::ByteWriter w;
  w.write_string(r.shop);
  w.write_string(r.brand);
  w.write_f64(r.price);
  w.write_f64(r.days);
  return w.take();
}

SkiRentalRecord decode_ski_rental(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  SkiRentalRecord rec;
  rec.shop = r.read_string();
  rec.brand = r.read_string();
  rec.price = static_cast<float>(r.read_f64());
  rec.days = static_cast<float>(r.read_f64());
  return rec;
}

}  // namespace

int main() {
  net::NetworkFabric fabric;
  fabric.set_default_link({.latency_ms = 5});

  jxta::Peer customer({.name = "customer"});
  customer.add_transport(
      std::make_shared<net::InProcTransport>(fabric, "customer"));
  customer.start();

  jxta::Peer shop({.name = "shop"});
  shop.add_transport(std::make_shared<net::InProcTransport>(fabric, "shop"));
  shop.start();

  srjxta::SrConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(400);

  // Subscriber side: search/create the advertisement, wire up a receiver
  // that must parse the raw bytes itself.
  auto customer_session = std::make_shared<srjxta::SrSession>(
      customer, "SkiRental", config);
  customer_session->init();
  std::atomic<int> received{0};
  customer_session->set_receiver([&](const util::Bytes& payload) {
    // The runtime-cast moment the TPS layer removes: if this payload is not
    // actually a SkiRental, decode throws or silently mis-reads.
    const SkiRentalRecord offer = decode_ski_rental(payload);
    std::cout << "  offer: " << offer.brand << " from " << offer.shop
              << " at " << offer.price << "/day for " << offer.days
              << " day(s)\n";
    ++received;
  });

  // Publisher side.
  auto shop_session =
      std::make_shared<srjxta::SrSession>(shop, "SkiRental", config);
  shop_session->init();
  shop_session->publish(encode_ski_rental(
      {.shop = "XTremShop", .brand = "Salomon", .price = 14, .days = 100}));
  shop_session->publish(encode_ski_rental(
      {.shop = "XTremShop", .brand = "Rossignol", .price = 11.5, .days = 7}));
  shop_session->publish(encode_ski_rental(
      {.shop = "XTremShop", .brand = "Atomic", .price = 19, .days = 2}));

  for (int i = 0; i < 50 && received < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const auto stats = customer_session->stats();
  std::cout << "received=" << stats.received_unique
            << " duplicates_suppressed=" << stats.duplicates_suppressed
            << " advertisements=" << customer_session->advertisement_count()
            << "\n";

  shop_session->shutdown();
  customer_session->shutdown();
  shop.stop();
  customer.stop();
  return received == 3 ? 0 : 1;
}
