// Quickstart: two peers, one typed topic, publish and receive.
//
// Demonstrates the paper's four programming phases (§4.2) end to end:
//   1. type definition     — events::SkiRental (src/events/ski_rental.h)
//   2. initialization      — TpsEngine<SkiRental>::new_interface()
//   3. subscription        — subscribe(callback, exception handler)
//   4. publication         — publish(SkiRental{...})
//
// Run: ./build/examples/quickstart
// Add --metrics to dump each peer's internal counters (and the delivery
// trace) as JSON at the end.
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>

#include "events/ski_rental.h"
#include "jxta/peer.h"
#include "net/inproc_transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tps/tps.h"

using namespace p2p;
using events::SkiRental;

namespace {

// Phase 3's call-back object, exactly like the paper's MyCBInterface
// (§4.3.3): print each offer to the console.
class MyCbInterface final : public tps::TpsCallback<SkiRental> {
 public:
  void handle(const SkiRental& ski_rental) override {
    std::cout << "Skis that could be rented: " << ski_rental.to_string()
              << "\n";
    ++received_;
  }
  [[nodiscard]] int received() const { return received_; }

 private:
  int received_ = 0;
};

// And the paper's MyExHandler.
class MyExHandler final : public tps::TpsExceptionHandler<SkiRental> {
 public:
  void handle(std::exception_ptr error) override {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      std::cerr << "callback failed: " << e.what() << "\n";
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool dump_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) dump_metrics = true;
  }

  // A simulated WAN: 5 ms one-way latency on every link.
  net::NetworkFabric fabric;
  fabric.set_default_link({.latency_ms = 5});

  // Two peers on the fabric. No rendezvous needed on one "LAN segment" —
  // discovery uses the multicast path, as JXTA does.
  jxta::Peer subscriber({.name = "ski-fan"});
  subscriber.add_transport(
      std::make_shared<net::InProcTransport>(fabric, "ski-fan"));
  subscriber.start();

  jxta::Peer shop({.name = "xtrem-shop"});
  shop.add_transport(
      std::make_shared<net::InProcTransport>(fabric, "xtrem-shop"));
  shop.start();

  // Initialization phase (paper §4.3.2). The subscriber goes first: it
  // searches for a SkiRental advertisement, finds none, and creates one.
  tps::TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(400);
  tps::TpsEngine<SkiRental> subscriber_engine(subscriber, config);
  auto subscriber_tps = subscriber_engine.new_interface();

  // Subscription phase (§4.3.3).
  auto callback = std::make_shared<MyCbInterface>();
  auto ex_handler = std::make_shared<MyExHandler>();
  subscriber_tps.subscribe(callback, ex_handler);

  // The shop comes up, discovers the existing advertisement (functionality
  // (1): it does NOT create a second one) and publishes.
  tps::TpsEngine<SkiRental> shop_engine(shop, config);
  auto shop_tps = shop_engine.new_interface();

  // Publication phase (§4.3.4) — the paper's very line:
  shop_tps.publish(SkiRental("XTremShop", 14.0f, "Salomon", 100.0f));
  shop_tps.publish(SkiRental("XTremShop", 11.5f, "Rossignol", 7.0f));
  shop_tps.publish(SkiRental("XTremShop", 19.0f, "Atomic", 2.0f));

  // Time, space and flow decoupling in action: the publisher returned
  // immediately; deliveries ride the simulated WAN.
  for (int i = 0; i < 50 && callback->received() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cout << "objects received: "
            << subscriber_tps.objects_received().size()
            << ", objects sent by shop: " << shop_tps.objects_sent().size()
            << ", advertisements bound: "
            << subscriber_tps.advertisement_count() << "\n";

  if (dump_metrics) {
    // The observability layer (src/obs/): per-peer registries every stack
    // layer reports into, plus the hop-by-hop trace each delivery leaves.
    std::cout << "{\"peer\":\"ski-fan\",\"metrics\":"
              << subscriber.metrics().snapshot().to_json() << "}\n"
              << "{\"peer\":\"xtrem-shop\",\"metrics\":"
              << shop.metrics().snapshot().to_json() << "}\n";
    for (const auto& trace : subscriber.tracer().recent()) {
      std::cout << "trace " << trace.id.to_string() << ":";
      for (const auto& hop : trace.hops) {
        std::cout << " [" << hop.stage << " @" << hop.t_us << "us]";
      }
      std::cout << "\n";
    }
  }

  shop.stop();
  subscriber.stop();
  return callback->received() == 3 ? 0 : 1;
}
