// Quickstart: two peers, one typed topic, publish and receive — on the
// v2 TPS surface.
//
// Demonstrates the paper's four programming phases (§4.2) end to end:
//   1. type definition     — events::SkiRental (src/events/ski_rental.h)
//   2. initialization      — TpsEngine<SkiRental>::new_interface(), with
//                            the knobs set through TpsConfig::Builder
//   3. subscription        — subscribe(lambda) -> RAII Subscription
//   4. publication         — try_publish(event) -> PublishTicket, then
//                            flush() to drain the async batch pipeline
//
// The paper-faithful v1 calls (call-back objects, throwing publish) still
// exist — see tests/tps_test.cpp — but new code should look like this.
//
// Run: ./build/examples/quickstart
// Add --metrics to dump each peer's internal counters (and the delivery
// trace) as JSON at the end.
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <thread>

#include "events/ski_rental.h"
#include "jxta/peer.h"
#include "net/inproc_transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tps/tps.h"

using namespace p2p;
using events::SkiRental;

int main(int argc, char** argv) {
  bool dump_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) dump_metrics = true;
  }

  // A simulated WAN: 5 ms one-way latency on every link.
  net::NetworkFabric fabric;
  fabric.set_default_link({.latency_ms = 5});

  // Two peers on the fabric. No rendezvous needed on one "LAN segment" —
  // discovery uses the multicast path, as JXTA does.
  jxta::Peer subscriber({.name = "ski-fan"});
  subscriber.add_transport(
      std::make_shared<net::InProcTransport>(fabric, "ski-fan"));
  subscriber.start();

  jxta::Peer shop({.name = "xtrem-shop"});
  shop.add_transport(
      std::make_shared<net::InProcTransport>(fabric, "xtrem-shop"));
  shop.start();

  // Initialization phase (paper §4.3.2). TpsConfig::Builder validates the
  // knobs at build() time; see src/tps/session.h for the full list and
  // the paper sections each one traces back to.
  const tps::TpsConfig config =
      tps::TpsConfig::Builder()
          .adv_search_timeout(std::chrono::milliseconds(400))
          .build();
  // The publisher additionally turns on the fast publish pipeline
  // (beyond the paper): publications are enqueued, coalesced into batch
  // frames by a sender thread, and each distinct event is encoded once.
  const tps::TpsConfig fast_config =
      tps::TpsConfig::Builder()
          .adv_search_timeout(std::chrono::milliseconds(400))
          .batching(/*max_events=*/8, std::chrono::milliseconds(2))
          .encode_cache(/*capacity=*/64)
          .build();

  // The subscriber goes first: it searches for a SkiRental advertisement,
  // finds none, and creates one.
  tps::TpsEngine<SkiRental> subscriber_engine(subscriber, config);
  auto subscriber_tps = subscriber_engine.new_interface();

  // Subscription phase (§4.3.3), v2 style: a lambda in, an RAII handle
  // out. Dropping (or cancel()ing) the handle unsubscribes exactly this
  // registration; the optional second lambda receives callback errors.
  int received = 0;
  tps::Subscription subscription = subscriber_tps.subscribe(
      [&received](const SkiRental& ski_rental) {
        std::cout << "Skis that could be rented: " << ski_rental.to_string()
                  << "\n";
        ++received;
      },
      [](std::exception_ptr error) {
        try {
          std::rethrow_exception(error);
        } catch (const std::exception& e) {
          std::cerr << "callback failed: " << e.what() << "\n";
        }
      });

  // The shop comes up, discovers the existing advertisement (functionality
  // (1): it does NOT create a second one) and publishes.
  tps::TpsEngine<SkiRental> shop_engine(shop, fast_config);
  auto shop_tps = shop_engine.new_interface();

  // Publication phase (§4.3.4), v2 style: try_publish never throws — the
  // ticket says what happened (sent, enqueued on the async pipeline, shed
  // by backpressure, or rejected).
  const SkiRental offers[] = {
      SkiRental("XTremShop", 14.0f, "Salomon", 100.0f),
      SkiRental("XTremShop", 11.5f, "Rossignol", 7.0f),
      SkiRental("XTremShop", 19.0f, "Atomic", 2.0f),
  };
  for (const SkiRental& offer : offers) {
    const tps::PublishTicket ticket = shop_tps.try_publish(offer);
    if (!ticket.ok()) {
      std::cerr << "publish failed: " << tps::to_string(ticket.outcome)
                << "\n";
    }
  }
  // Hand every enqueued publication to the wires before we start waiting.
  shop_tps.flush();

  // Time, space and flow decoupling in action: the publisher returned
  // immediately; deliveries ride the simulated WAN.
  for (int i = 0; i < 50 && received < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const tps::TpsStats shop_stats = shop_tps.stats();
  std::cout << "objects received: "
            << subscriber_tps.objects_received().size()
            << ", objects sent by shop: " << shop_tps.objects_sent().size()
            << ", advertisements bound: "
            << subscriber_tps.advertisement_count()
            << ", batches sent by shop: " << shop_stats.batches_sent << "\n";

  if (dump_metrics) {
    // The observability layer (src/obs/): per-peer registries every stack
    // layer reports into, plus the hop-by-hop trace each delivery leaves.
    std::cout << "{\"peer\":\"ski-fan\",\"metrics\":"
              << subscriber.metrics().snapshot().to_json() << "}\n"
              << "{\"peer\":\"xtrem-shop\",\"metrics\":"
              << shop.metrics().snapshot().to_json() << "}\n";
    for (const auto& trace : subscriber.tracer().recent()) {
      std::cout << "trace " << trace.id.to_string() << ":";
      for (const auto& hop : trace.hops) {
        std::cout << " [" << hop.stage << " @" << hop.t_us << "us]";
      }
      std::cout << "\n";
    }
  }

  subscription.cancel();  // or just let it fall out of scope
  shop.stop();
  subscriber.stop();
  return received == 3 ? 0 : 1;
}
