// Type-hierarchy dispatch (paper Fig. 7).
//
// Hierarchy: News <- SportsNews <- SkiNews. Three subscribers sit at the
// three levels; a publisher emits one event of each type. Expected flows
// (the f_T arrows of Fig. 7):
//
//   News            -> news desk only
//   SportsNews      -> news desk + sports desk
//   SkiNews         -> news desk + sports desk + ski desk
//
// Each subscriber receives the *concrete* object: the news desk can
// dynamic_cast a received News& to SkiNews and read the resort — type
// safety and encapsulation end to end.
//
// Run: ./build/examples/news_hierarchy
#include <iostream>
#include <thread>

#include "events/news.h"
#include "jxta/peer.h"
#include "net/inproc_transport.h"
#include "tps/tps.h"

using namespace p2p;
using events::News;
using events::SkiNews;
using events::SportsNews;

namespace {

template <typename T>
class Desk final : public tps::TpsCallback<T> {
 public:
  explicit Desk(std::string name) : name_(std::move(name)) {}

  void handle(const T& event) override {
    const std::lock_guard lock(mu_);
    std::cout << "  [" << name_ << "] " << event.headline();
    // The concrete subtype travels intact: downcast to inspect specifics.
    if (const auto* ski = dynamic_cast<const SkiNews*>(&event)) {
      std::cout << " (ski news from " << ski->resort() << ")";
    } else if (const auto* sports =
                   dynamic_cast<const SportsNews*>(&event)) {
      std::cout << " (sports: " << sports->sport() << ")";
    }
    std::cout << "\n";
    ++count_;
  }

  [[nodiscard]] int count() const {
    const std::lock_guard lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::string name_;
  int count_ = 0;
};

}  // namespace

int main() {
  net::NetworkFabric fabric;
  fabric.set_default_link({.latency_ms = 3});

  const auto make_peer = [&](const std::string& name) {
    auto peer = std::make_unique<jxta::Peer>(jxta::PeerConfig{.name = name});
    peer->add_transport(std::make_shared<net::InProcTransport>(fabric, name));
    peer->start();
    return peer;
  };
  const auto news_peer = make_peer("news-desk");
  const auto sports_peer = make_peer("sports-desk");
  const auto ski_peer = make_peer("ski-desk");
  const auto agency = make_peer("press-agency");

  tps::TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(400);

  // Three subscribers at three levels of the hierarchy.
  tps::TpsEngine<News> news_engine(*news_peer, config);
  auto news_tps = news_engine.new_interface();
  auto news_desk = std::make_shared<Desk<News>>("news desk   ");
  news_tps.subscribe(news_desk, tps::ignore_exceptions<News>());

  tps::TpsEngine<SportsNews> sports_engine(*sports_peer, config);
  auto sports_tps = sports_engine.new_interface();
  auto sports_desk = std::make_shared<Desk<SportsNews>>("sports desk ");
  sports_tps.subscribe(sports_desk, tps::ignore_exceptions<SportsNews>());

  tps::TpsEngine<SkiNews> ski_engine(*ski_peer, config);
  auto ski_tps = ski_engine.new_interface();
  auto ski_desk = std::make_shared<Desk<SkiNews>>("ski desk    ");
  ski_tps.subscribe(ski_desk, tps::ignore_exceptions<SkiNews>());

  // The publisher's interface is typed to the hierarchy root; publishing a
  // subtype instance through it dispatches on the *dynamic* type.
  tps::TpsEngine<News> agency_engine(*agency, config);
  auto agency_tps = agency_engine.new_interface();

  std::cout << "publishing one News, one SportsNews, one SkiNews\n";
  agency_tps.publish(News("Markets steady", "..."));
  agency_tps.publish(std::make_shared<const SportsNews>(
      "Cup final tonight", "...", "football"));
  agency_tps.publish(
      std::make_shared<const SkiNews>("Fresh powder", "...", "Verbier"));

  for (int i = 0; i < 100; ++i) {
    if (news_desk->count() >= 3 && sports_desk->count() >= 2 &&
        ski_desk->count() >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cout << "\ndeliveries: news desk=" << news_desk->count()
            << " sports desk=" << sports_desk->count()
            << " ski desk=" << ski_desk->count() << "\n";

  const bool ok = news_desk->count() == 3 && sports_desk->count() == 2 &&
                  ski_desk->count() == 1;
  std::cout << (ok ? "hierarchy dispatch OK" : "UNEXPECTED delivery counts")
            << "\n";
  return ok ? 0 : 1;
}
