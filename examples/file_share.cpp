// Searching and file sharing — the paper's §1 "Morpheus, AudioGalaxy"
// application category, built on the CMS service (§2: "the cms (content
// management system) service").
//
// Three peers share trail maps; a fourth searches by keyword, fetches the
// best match and verifies the content-derived codat id. One provider sits
// behind a firewall — its content is still searchable and fetchable via
// the rendezvous.
//
// Run: ./build/examples/file_share
#include <iostream>
#include <thread>

#include "jxta/peer.h"
#include "net/inproc_transport.h"

using namespace p2p;

int main() {
  net::NetworkFabric fabric;
  fabric.set_default_link({.latency_ms = 5});

  jxta::Peer rdv({.name = "rdv", .rendezvous = true, .router = true});
  rdv.add_transport(std::make_shared<net::InProcTransport>(fabric, "rdv"));
  rdv.start();

  const auto make_peer = [&](const std::string& name, bool firewalled) {
    jxta::PeerConfig config;
    config.name = name;
    config.seed_rendezvous = {net::Address("inproc", "rdv")};
    auto peer = std::make_unique<jxta::Peer>(config);
    peer->add_transport(std::make_shared<net::InProcTransport>(fabric, name));
    if (firewalled) fabric.set_firewalled(name, true);
    peer->start();
    return peer;
  };
  const auto library = make_peer("map-library", false);
  const auto club = make_peer("ski-club", false);
  const auto hut = make_peer("mountain-hut", true);  // firewalled
  const auto hiker = make_peer("hiker", false);

  // Providers share content.
  library->cms().share("verbier-trails.map", "trail map Verbier pistes",
                       util::to_bytes("VERBIER MAP DATA v3"));
  club->cms().share("zermatt-trails.map", "trail map Zermatt pistes",
                    util::to_bytes("ZERMATT MAP DATA v7"));
  const auto hut_adv =
      hut->cms().share("offpiste-verbier.map",
                       "trail map Verbier offpiste backcountry",
                       util::to_bytes("OFFPISTE MAP (hand drawn)"));

  // Give the advertisements a moment to propagate.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  std::cout << "hiker searches for *Verbier* maps...\n";
  const auto hits =
      hiker->cms().search("*Verbier*", std::chrono::milliseconds(600));
  for (const auto& hit : hits) {
    std::cout << "  found: " << hit.name << " (" << hit.size
              << " bytes) — " << hit.description << "\n";
  }

  std::cout << "\nhiker fetches the off-piste map (from the firewalled "
               "hut, relayed through the rendezvous)...\n";
  const auto content =
      hiker->cms().fetch(hut_adv, std::chrono::milliseconds(5000));
  if (content) {
    std::cout << "  fetched " << content->size()
              << " bytes, integrity verified: \""
              << util::to_string(*content) << "\"\n";
  } else {
    std::cout << "  fetch FAILED\n";
  }

  const bool ok = hits.size() >= 2 && content.has_value();
  std::cout << (ok ? "\nfile sharing demo OK\n"
                   : "\nfile sharing demo FAILED\n");
  return ok ? 0 : 1;
}
