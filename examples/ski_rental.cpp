// The paper's ski-rental application (§4.1, §4.3), full scenario.
//
// "If you want to go skiing, you need skis. ... A more comfortable way to
// do that is to use the TPS paradigm over a P2P infrastructure. You would
// then subscribe to the ski-rental type and wait for the answers."
//
// Topology (a small WAN, not one LAN):
//   - one rendezvous peer bridging two "sub-networks",
//   - three shop peers publishing offers (one of them behind a firewall —
//     its traffic must relay through the rendezvous, exercising ERP),
//   - two customer peers subscribing; customer 1 registers TWO call-backs
//     (paper method (3)): a "console" log and a "GUI sketch" summary table;
//     customer 2 uses a Criteria to bind only advertisements created by
//     shops it trusts.
//
// Run: ./build/examples/ski_rental
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <thread>

#include "events/ski_rental.h"
#include "jxta/peer.h"
#include "net/inproc_transport.h"
#include "tps/tps.h"

using namespace p2p;
using events::SkiRental;

namespace {

// The "console" view: every offer as it arrives.
class ConsoleCallback final : public tps::TpsCallback<SkiRental> {
 public:
  void handle(const SkiRental& offer) override {
    std::cout << "  [console] " << offer.to_string() << "\n";
  }
};

// The "GUI sketch" (paper Fig. 13): keeps the best offer per brand and can
// render a little table.
class GuiSketchCallback final : public tps::TpsCallback<SkiRental> {
 public:
  void handle(const SkiRental& offer) override {
    const std::lock_guard lock(mu_);
    auto& best = best_by_brand_[offer.brand()];
    if (best.shop().empty() || offer.price() < best.price()) best = offer;
    ++count_;
  }

  void render() const {
    const std::lock_guard lock(mu_);
    std::cout << "  +--------------+--------------+-----------+\n"
              << "  | brand        | best shop    | price/day |\n"
              << "  +--------------+--------------+-----------+\n";
    for (const auto& [brand, offer] : best_by_brand_) {
      std::cout << "  | " << std::setw(12) << std::left << brand << " | "
                << std::setw(12) << std::left << offer.shop() << " | "
                << std::setw(9) << std::right << offer.price() << " |\n";
    }
    std::cout << "  +--------------+--------------+-----------+\n";
  }

  [[nodiscard]] int count() const {
    const std::lock_guard lock(mu_);
    return count_;
  }

  // After browsing, the customer "maybe sends an e-mail to the shop"
  // (paper §4.1) — here: returns the overall best offer to contact.
  [[nodiscard]] std::optional<SkiRental> best_offer() const {
    const std::lock_guard lock(mu_);
    std::optional<SkiRental> best;
    for (const auto& [brand, offer] : best_by_brand_) {
      if (!best || offer.total_price() < best->total_price()) best = offer;
    }
    return best;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, SkiRental> best_by_brand_;
  int count_ = 0;
};

std::shared_ptr<tps::TpsExceptionHandler<SkiRental>> stderr_handler() {
  return tps::make_exception_handler<SkiRental>([](std::exception_ptr e) {
    try {
      std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      std::cerr << "  [error] " << ex.what() << "\n";
    }
  });
}

}  // namespace

int main() {
  net::NetworkFabric fabric;
  fabric.set_default_link({.latency_ms = 8, .jitter_ms = 4});

  // --- the rendezvous bridging the sub-networks ---------------------------
  jxta::Peer rdv({.name = "rdv", .rendezvous = true, .router = true});
  rdv.add_transport(std::make_shared<net::InProcTransport>(fabric, "rdv"));
  rdv.start();
  const net::Address rdv_addr("inproc", "rdv");

  const auto make_peer = [&](const std::string& name, bool firewalled) {
    jxta::PeerConfig config;
    config.name = name;
    config.seed_rendezvous = {rdv_addr};
    auto peer = std::make_unique<jxta::Peer>(config);
    peer->add_transport(std::make_shared<net::InProcTransport>(fabric, name));
    if (firewalled) fabric.set_firewalled(name, true);
    peer->start();
    return peer;
  };

  // --- shops and customers -------------------------------------------------
  const auto shop_a = make_peer("AlpineRentals", false);
  const auto shop_b = make_peer("XTremShop", false);
  // This shop sits behind a stateful firewall: only its outbound lease to
  // the rendezvous lets traffic reach it (ERP relaying in action).
  const auto shop_c = make_peer("BackcountryHut", true);
  const auto customer1 = make_peer("alice", false);
  const auto customer2 = make_peer("bob", false);

  tps::TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(600);

  // --- subscription phase ---------------------------------------------------
  std::cout << "alice subscribes with two call-backs (console + GUI)\n";
  tps::TpsEngine<SkiRental> alice_engine(*customer1, config);
  auto alice_tps = alice_engine.new_interface();
  auto alice_console = std::make_shared<ConsoleCallback>();
  auto alice_gui = std::make_shared<GuiSketchCallback>();
  // Paper method (3): several call-backs registered in one call.
  alice_tps.subscribe(
      {std::static_pointer_cast<tps::TpsCallback<SkiRental>>(alice_console),
       std::static_pointer_cast<tps::TpsCallback<SkiRental>>(alice_gui)},
      {stderr_handler(), stderr_handler()});

  // Content-based filtering on top of TPS (paper §3.1: "subscription
  // operations of the type can be used for content-based filtering"): bob
  // is on a budget and only records offers at 15/day or less.
  std::cout << "bob subscribes with a content filter: price <= 15/day\n";
  tps::TpsEngine<SkiRental> bob_engine(*customer2, config);
  auto bob_tps = bob_engine.new_interface();
  auto bob_gui = std::make_shared<GuiSketchCallback>();
  auto bob_filter = tps::make_callback<SkiRental>(
      [bob_gui](const SkiRental& offer) {
        if (offer.price() <= 15.0f) bob_gui->handle(offer);
      });
  bob_tps.subscribe(bob_filter, stderr_handler());

  // --- publication phase ---------------------------------------------------
  const auto publish_offers =
      [&](jxta::Peer& peer, const std::string& shop,
          std::initializer_list<std::tuple<const char*, float, float>>
              offers) {
        tps::TpsEngine<SkiRental> engine(peer, config);
        auto tps_interface = engine.new_interface();
        for (const auto& [brand, price, days] : offers) {
          tps_interface.publish(SkiRental(shop, price, brand, days));
        }
        return tps_interface;  // keep the session (and its pipes) alive
      };

  std::cout << "shops publish their offers\n";
  auto a_tps = publish_offers(*shop_a, "AlpineRentals",
                              {{"Salomon", 13.0f, 7.0f},
                               {"Atomic", 17.5f, 7.0f},
                               {"Rossignol", 12.0f, 7.0f}});
  auto b_tps = publish_offers(*shop_b, "XTremShop",
                              {{"Salomon", 14.0f, 100.0f},
                               {"Rossignol", 11.5f, 7.0f},
                               {"Atomic", 19.0f, 2.0f}});
  auto c_tps = publish_offers(*shop_c, "BackcountryHut",
                              {{"Salomon", 9.5f, 7.0f},
                               {"Faction", 21.0f, 7.0f}});

  // The customer "can now do something else during the search phase ... and
  // come back later to get the answers" (§4.1).
  for (int i = 0; i < 100 && alice_gui->count() < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cout << "\nalice's GUI sketch (all shops, incl. the firewalled one):\n";
  alice_gui->render();
  std::cout << "\nbob's GUI sketch (content-filtered, <= 15/day):\n";
  bob_gui->render();

  if (const auto best = alice_gui->best_offer()) {
    std::cout << "\nalice e-mails " << best->shop()
              << " about: " << best->to_string() << "\n";
  }

  const auto stats = alice_tps.stats();
  std::cout << "\nalice session stats: received=" << stats.received_unique
            << " duplicates_suppressed=" << stats.duplicates_suppressed
            << " advertisements=" << alice_tps.advertisement_count() << "\n";

  const bool ok = alice_gui->count() == 8 && bob_gui->count() >= 3;
  return ok ? 0 : 1;
}
