// Instant messaging over TPS — the first P2P application category the
// paper's introduction lists ("instant messaging (ICQ, AOL's Instant
// Messenger)").
//
// A chat room is simply an event type: ChatMessage. Everybody subscribes
// and publishes on the same typed topic; there is no server, and presence
// comes from the monitoring service (who answers status sweeps). A private
// whisper uses the request/reply extension.
//
// Run: ./build/examples/chat
#include <iostream>
#include <thread>

#include "jxta/peer.h"
#include "net/inproc_transport.h"
#include "tps/request_reply.h"

using namespace p2p;

namespace {

class ChatMessage : public serial::Event {
 public:
  ChatMessage() = default;
  ChatMessage(std::string from, std::string text)
      : from_(std::move(from)), text_(std::move(text)) {}
  [[nodiscard]] const std::string& from() const { return from_; }
  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  std::string from_;
  std::string text_;
};

class Whisper : public serial::Event {
 public:
  Whisper() = default;
  Whisper(std::string to, std::string text)
      : to_(std::move(to)), text_(std::move(text)) {}
  [[nodiscard]] const std::string& to() const { return to_; }
  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  std::string to_;
  std::string text_;
};

class Ack : public serial::Event {
 public:
  Ack() = default;
  explicit Ack(std::string by) : by_(std::move(by)) {}
  [[nodiscard]] const std::string& by() const { return by_; }

 private:
  std::string by_;
};

}  // namespace

template <>
struct p2p::serial::EventTraits<ChatMessage> {
  static constexpr std::string_view kTypeName = "chat:Message";
  using Parent = NoParent;
  static void encode(const ChatMessage& e, util::ByteWriter& w) {
    w.write_string(e.from());
    w.write_string(e.text());
  }
  static ChatMessage decode(util::ByteReader& r) {
    std::string from = r.read_string();
    std::string text = r.read_string();
    return {std::move(from), std::move(text)};
  }
};

template <>
struct p2p::serial::EventTraits<Whisper> {
  static constexpr std::string_view kTypeName = "chat:Whisper";
  using Parent = NoParent;
  static void encode(const Whisper& e, util::ByteWriter& w) {
    w.write_string(e.to());
    w.write_string(e.text());
  }
  static Whisper decode(util::ByteReader& r) {
    std::string to = r.read_string();
    std::string text = r.read_string();
    return {std::move(to), std::move(text)};
  }
};

template <>
struct p2p::serial::EventTraits<Ack> {
  static constexpr std::string_view kTypeName = "chat:Ack";
  using Parent = NoParent;
  static void encode(const Ack& e, util::ByteWriter& w) {
    w.write_string(e.by());
  }
  static Ack decode(util::ByteReader& r) { return Ack{r.read_string()}; }
};

int main() {
  net::NetworkFabric fabric;
  fabric.set_default_link({.latency_ms = 3});

  const auto make_peer = [&](const std::string& name) {
    auto peer = std::make_unique<jxta::Peer>(jxta::PeerConfig{.name = name});
    peer->add_transport(std::make_shared<net::InProcTransport>(fabric, name));
    peer->start();
    return peer;
  };
  const auto alice = make_peer("alice");
  const auto bob = make_peer("bob");
  const auto carol = make_peer("carol");

  tps::TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(400);

  // Everyone joins the room: one engine + one subscription per user.
  struct User {
    User(std::string n, tps::TpsInterface<ChatMessage> r)
        : name(std::move(n)), room(std::move(r)) {}
    std::string name;
    tps::TpsInterface<ChatMessage> room;
    std::atomic<int> seen{0};
  };
  const auto join = [&](jxta::Peer& peer, const std::string& name) {
    tps::TpsEngine<ChatMessage> engine(peer, config);
    auto room = engine.new_interface();
    auto user = std::make_unique<User>(name, room);
    User* raw = user.get();
    room.subscribe(tps::make_callback<ChatMessage>(
                       [raw](const ChatMessage& m) {
                         if (m.from() == raw->name) return;  // own echo
                         std::cout << "  [" << raw->name << "'s screen] <"
                                   << m.from() << "> " << m.text() << "\n";
                         ++raw->seen;
                       }),
                   tps::ignore_exceptions<ChatMessage>());
    return user;
  };
  auto alice_user = join(*alice, "alice");
  auto bob_user = join(*bob, "bob");
  auto carol_user = join(*carol, "carol");

  std::cout << "room chatter:\n";
  alice_user->room.publish(ChatMessage("alice", "anyone skiing saturday?"));
  bob_user->room.publish(ChatMessage("bob", "yes! Verbier has fresh snow"));

  for (int i = 0; i < 100; ++i) {
    if (alice_user->seen >= 1 && bob_user->seen >= 1 &&
        carol_user->seen >= 2) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Presence via the monitoring service: who is in the network right now?
  alice->monitoring().sweep();
  std::cout << "\nalice's buddy list (monitoring sweep): "
            << alice->monitoring().live_peer_count() << " peer(s) online\n";
  for (const auto& status : alice->monitoring().statuses()) {
    std::cout << "  online: " << status.info.name
              << " (uptime " << status.info.uptime_ms << " ms)\n";
  }

  // A whisper: request/reply so alice knows carol actually got it.
  std::cout << "\nalice whispers to carol...\n";
  tps::Requester<Whisper, Ack> whisperer(*alice, config);
  tps::Responder<Whisper, Ack> carol_ears(
      *carol,
      [](const Whisper& w) -> std::optional<Ack> {
        if (w.to() != "carol") return std::nullopt;  // not for me
        std::cout << "  [carol's screen] (whisper) " << w.text() << "\n";
        return Ack{"carol"};
      },
      config);
  std::atomic<bool> acked{false};
  whisperer.request(Whisper("carol", "bob snores — take earplugs"),
                    [&](const Ack& ack) {
                      std::cout << "  [alice's screen] delivered to "
                                << ack.by() << "\n";
                      acked = true;
                    });
  for (int i = 0; i < 100 && !acked; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const bool ok = carol_user->seen >= 2 && acked;
  std::cout << (ok ? "\nchat demo OK\n" : "\nchat demo FAILED\n");
  return ok ? 0 : 1;
}
