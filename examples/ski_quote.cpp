// Request/reply over TPS (the paper's §6 future-work combination).
//
// The ski-rental story, inverted: instead of shops flooding offers, the
// customer publishes a typed QuoteRequest; interested shops answer with a
// SkiRental offer sent straight back over a unicast reply pipe (the
// "RPC-ish" leg the paper says TPS alone lacks). The customer stays
// anonymous to the shops and never blocks.
//
// Run: ./build/examples/ski_quote
#include <iostream>
#include <thread>

#include "events/ski_rental.h"
#include "jxta/peer.h"
#include "net/inproc_transport.h"
#include "tps/request_reply.h"

using namespace p2p;
using events::SkiRental;

namespace {

// The request type: what the customer wants.
class QuoteRequest : public serial::Event {
 public:
  QuoteRequest() = default;
  QuoteRequest(std::string brand, float days)
      : brand_(std::move(brand)), days_(days) {}
  [[nodiscard]] const std::string& brand() const { return brand_; }
  [[nodiscard]] float days() const { return days_; }

 private:
  std::string brand_;
  float days_ = 0;
};

}  // namespace

template <>
struct p2p::serial::EventTraits<QuoteRequest> {
  static constexpr std::string_view kTypeName = "QuoteRequest";
  using Parent = NoParent;
  static void encode(const QuoteRequest& e, util::ByteWriter& w) {
    w.write_string(e.brand());
    w.write_f64(e.days());
  }
  static QuoteRequest decode(util::ByteReader& r) {
    std::string brand = r.read_string();
    const auto days = static_cast<float>(r.read_f64());
    return {std::move(brand), days};
  }
};

int main() {
  net::NetworkFabric fabric;
  fabric.set_default_link({.latency_ms = 4});

  const auto make_peer = [&](const std::string& name) {
    auto peer = std::make_unique<jxta::Peer>(jxta::PeerConfig{.name = name});
    peer->add_transport(std::make_shared<net::InProcTransport>(fabric, name));
    peer->start();
    return peer;
  };
  const auto customer = make_peer("customer");
  const auto shop_a = make_peer("AlpineRentals");
  const auto shop_b = make_peer("XTremShop");

  tps::TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(400);

  // The customer's requester comes up first (it owns the request topic).
  tps::Requester<QuoteRequest, SkiRental> requester(*customer, config);

  // Two shops serve quotes; each declines brands it does not stock.
  tps::Responder<QuoteRequest, SkiRental> alpine(
      *shop_a,
      [](const QuoteRequest& q) -> std::optional<SkiRental> {
        if (q.brand() != "Salomon") return std::nullopt;
        return SkiRental("AlpineRentals", 13.0f, q.brand(), q.days());
      },
      config);
  tps::Responder<QuoteRequest, SkiRental> xtrem(
      *shop_b,
      [](const QuoteRequest& q) -> std::optional<SkiRental> {
        return SkiRental("XTremShop", q.brand() == "Salomon" ? 14.0f : 11.5f,
                         q.brand(), q.days());
      },
      config);

  std::mutex mu;
  std::vector<SkiRental> quotes;
  std::cout << "customer asks for Salomon skis, 7 days\n";
  requester.request(QuoteRequest("Salomon", 7.0f),
                    [&](const SkiRental& offer) {
                      const std::lock_guard lock(mu);
                      quotes.push_back(offer);
                      std::cout << "  quote: " << offer.to_string() << "\n";
                    });

  for (int i = 0; i < 100; ++i) {
    {
      const std::lock_guard lock(mu);
      if (quotes.size() >= 2) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const std::lock_guard lock(mu);
  std::cout << "received " << quotes.size() << " quote(s); shops answered: "
            << alpine.answered() + xtrem.answered() << "\n";
  if (!quotes.empty()) {
    const auto best = std::min_element(
        quotes.begin(), quotes.end(), [](const auto& a, const auto& b) {
          return a.total_price() < b.total_price();
        });
    std::cout << "best: " << best->to_string() << "\n";
  }
  return quotes.size() == 2 ? 0 : 1;
}
