// Loosely-coupled (XML-typed) publish/subscribe — the paper's §6 ongoing
// investigation, implemented.
//
// Two parties that share NO compiled event types — only the convention
// "there is a type called WeatherReport with fields resort/snow_cm/risk" —
// exchange events represented as XML data structures. A third subscriber
// at the hierarchy root (Alert) shows that runtime-described types still
// participate in Fig. 7 hierarchy dispatch.
//
// Run: ./build/examples/loose_coupling
#include <iostream>
#include <thread>

#include "jxta/peer.h"
#include "net/inproc_transport.h"
#include "tps/dynamic.h"

using namespace p2p;

int main() {
  net::NetworkFabric fabric;
  fabric.set_default_link({.latency_ms = 4});

  const auto make_peer = [&](const std::string& name) {
    auto peer = std::make_unique<jxta::Peer>(jxta::PeerConfig{.name = name});
    peer->add_transport(std::make_shared<net::InProcTransport>(fabric, name));
    peer->start();
    return peer;
  };
  const auto station = make_peer("weather-station");
  const auto skier = make_peer("skier-app");
  const auto rescue = make_peer("mountain-rescue");

  tps::TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(400);

  // A two-level runtime hierarchy: Alert <- WeatherReport.
  tps::DynamicTpsInterface rescue_tps(*rescue, "Alert", /*parent=*/"",
                                      config);
  std::atomic<int> alerts{0};
  rescue_tps.subscribe(
      [&](const tps::DynamicEvent& event) {
        std::cout << "  [rescue] alert of type " << event.type_name()
                  << " severity=" << event.get("risk") << "\n";
        ++alerts;
      },
      [](std::exception_ptr) {});

  tps::DynamicTpsInterface skier_tps(*skier, "WeatherReport", "Alert",
                                     config);
  std::atomic<int> reports{0};
  skier_tps.subscribe(
      [&](const tps::DynamicEvent& event) {
        std::cout << "  [skier] " << event.get("resort") << ": "
                  << event.get("snow_cm") << "cm fresh, avalanche risk "
                  << event.get("risk") << "\n";
        // Runtime looseness: absent fields read as "" instead of failing
        // to compile — the trade-off the paper discusses.
        if (!event.has("wind_kmh")) {
          std::cout << "  [skier] (no wind data in this report)\n";
        }
        ++reports;
      },
      [](std::exception_ptr) {});

  // The station publishes; it shares no headers with the subscribers.
  tps::DynamicTpsInterface station_tps(*station, "WeatherReport", "Alert",
                                       config);
  tps::DynamicEvent report("WeatherReport");
  report.set("resort", "Verbier").set("snow_cm", "60").set("risk", "3/5");
  station_tps.publish(report);
  std::cout << "station published (wire form is XML):\n  "
            << xml::write(report.to_xml()) << "\n";

  for (int i = 0; i < 100 && (reports < 1 || alerts < 1); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cout << "deliveries: skier=" << reports << " rescue=" << alerts
            << " (hierarchy dispatch reached the Alert subscriber)\n";
  return (reports == 1 && alerts == 1) ? 0 : 1;
}
