file(REMOVE_RECURSE
  "CMakeFiles/p2p_serial.dir/type_registry.cpp.o"
  "CMakeFiles/p2p_serial.dir/type_registry.cpp.o.d"
  "libp2p_serial.a"
  "libp2p_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
