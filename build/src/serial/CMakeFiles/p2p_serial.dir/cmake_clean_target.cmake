file(REMOVE_RECURSE
  "libp2p_serial.a"
)
