# Empty dependencies file for p2p_serial.
# This may be replaced when dependencies are built.
