# Empty compiler generated dependencies file for p2p_xml.
# This may be replaced when dependencies are built.
