file(REMOVE_RECURSE
  "libp2p_xml.a"
)
