file(REMOVE_RECURSE
  "CMakeFiles/p2p_xml.dir/xml.cpp.o"
  "CMakeFiles/p2p_xml.dir/xml.cpp.o.d"
  "libp2p_xml.a"
  "libp2p_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
