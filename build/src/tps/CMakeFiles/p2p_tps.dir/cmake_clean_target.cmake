file(REMOVE_RECURSE
  "libp2p_tps.a"
)
