file(REMOVE_RECURSE
  "CMakeFiles/p2p_tps.dir/advertisements.cpp.o"
  "CMakeFiles/p2p_tps.dir/advertisements.cpp.o.d"
  "CMakeFiles/p2p_tps.dir/session.cpp.o"
  "CMakeFiles/p2p_tps.dir/session.cpp.o.d"
  "libp2p_tps.a"
  "libp2p_tps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_tps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
