# Empty compiler generated dependencies file for p2p_tps.
# This may be replaced when dependencies are built.
