file(REMOVE_RECURSE
  "CMakeFiles/p2p_net.dir/address.cpp.o"
  "CMakeFiles/p2p_net.dir/address.cpp.o.d"
  "CMakeFiles/p2p_net.dir/fabric.cpp.o"
  "CMakeFiles/p2p_net.dir/fabric.cpp.o.d"
  "CMakeFiles/p2p_net.dir/inproc_transport.cpp.o"
  "CMakeFiles/p2p_net.dir/inproc_transport.cpp.o.d"
  "CMakeFiles/p2p_net.dir/tcp_transport.cpp.o"
  "CMakeFiles/p2p_net.dir/tcp_transport.cpp.o.d"
  "libp2p_net.a"
  "libp2p_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
