file(REMOVE_RECURSE
  "CMakeFiles/p2p_srjxta.dir/advertisements_creator.cpp.o"
  "CMakeFiles/p2p_srjxta.dir/advertisements_creator.cpp.o.d"
  "CMakeFiles/p2p_srjxta.dir/advertisements_finder.cpp.o"
  "CMakeFiles/p2p_srjxta.dir/advertisements_finder.cpp.o.d"
  "CMakeFiles/p2p_srjxta.dir/sr_session.cpp.o"
  "CMakeFiles/p2p_srjxta.dir/sr_session.cpp.o.d"
  "CMakeFiles/p2p_srjxta.dir/wire_service_finder.cpp.o"
  "CMakeFiles/p2p_srjxta.dir/wire_service_finder.cpp.o.d"
  "libp2p_srjxta.a"
  "libp2p_srjxta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_srjxta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
