# Empty compiler generated dependencies file for p2p_srjxta.
# This may be replaced when dependencies are built.
