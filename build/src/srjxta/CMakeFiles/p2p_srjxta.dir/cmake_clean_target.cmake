file(REMOVE_RECURSE
  "libp2p_srjxta.a"
)
