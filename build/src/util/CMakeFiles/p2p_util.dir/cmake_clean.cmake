file(REMOVE_RECURSE
  "CMakeFiles/p2p_util.dir/bytes.cpp.o"
  "CMakeFiles/p2p_util.dir/bytes.cpp.o.d"
  "CMakeFiles/p2p_util.dir/clock.cpp.o"
  "CMakeFiles/p2p_util.dir/clock.cpp.o.d"
  "CMakeFiles/p2p_util.dir/executor.cpp.o"
  "CMakeFiles/p2p_util.dir/executor.cpp.o.d"
  "CMakeFiles/p2p_util.dir/logging.cpp.o"
  "CMakeFiles/p2p_util.dir/logging.cpp.o.d"
  "CMakeFiles/p2p_util.dir/random.cpp.o"
  "CMakeFiles/p2p_util.dir/random.cpp.o.d"
  "CMakeFiles/p2p_util.dir/stats.cpp.o"
  "CMakeFiles/p2p_util.dir/stats.cpp.o.d"
  "CMakeFiles/p2p_util.dir/string_util.cpp.o"
  "CMakeFiles/p2p_util.dir/string_util.cpp.o.d"
  "CMakeFiles/p2p_util.dir/uuid.cpp.o"
  "CMakeFiles/p2p_util.dir/uuid.cpp.o.d"
  "libp2p_util.a"
  "libp2p_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
