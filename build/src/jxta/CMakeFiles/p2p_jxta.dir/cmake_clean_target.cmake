file(REMOVE_RECURSE
  "libp2p_jxta.a"
)
