# Empty dependencies file for p2p_jxta.
# This may be replaced when dependencies are built.
