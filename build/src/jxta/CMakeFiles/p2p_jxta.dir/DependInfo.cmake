
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jxta/advertisement.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/advertisement.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/advertisement.cpp.o.d"
  "/root/repo/src/jxta/bidi_pipe.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/bidi_pipe.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/bidi_pipe.cpp.o.d"
  "/root/repo/src/jxta/cms.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/cms.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/cms.cpp.o.d"
  "/root/repo/src/jxta/discovery.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/discovery.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/discovery.cpp.o.d"
  "/root/repo/src/jxta/endpoint.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/endpoint.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/endpoint.cpp.o.d"
  "/root/repo/src/jxta/membership.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/membership.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/membership.cpp.o.d"
  "/root/repo/src/jxta/message.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/message.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/message.cpp.o.d"
  "/root/repo/src/jxta/monitoring.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/monitoring.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/monitoring.cpp.o.d"
  "/root/repo/src/jxta/peer.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/peer.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/peer.cpp.o.d"
  "/root/repo/src/jxta/peer_group.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/peer_group.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/peer_group.cpp.o.d"
  "/root/repo/src/jxta/peer_info.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/peer_info.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/peer_info.cpp.o.d"
  "/root/repo/src/jxta/pipe.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/pipe.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/pipe.cpp.o.d"
  "/root/repo/src/jxta/rendezvous.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/rendezvous.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/rendezvous.cpp.o.d"
  "/root/repo/src/jxta/resolver.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/resolver.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/resolver.cpp.o.d"
  "/root/repo/src/jxta/route_resolver.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/route_resolver.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/route_resolver.cpp.o.d"
  "/root/repo/src/jxta/wire.cpp" "src/jxta/CMakeFiles/p2p_jxta.dir/wire.cpp.o" "gcc" "src/jxta/CMakeFiles/p2p_jxta.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/p2p_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/p2p_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2p_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
