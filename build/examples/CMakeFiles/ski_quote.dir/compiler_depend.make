# Empty compiler generated dependencies file for ski_quote.
# This may be replaced when dependencies are built.
