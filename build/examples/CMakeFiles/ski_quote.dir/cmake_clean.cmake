file(REMOVE_RECURSE
  "CMakeFiles/ski_quote.dir/ski_quote.cpp.o"
  "CMakeFiles/ski_quote.dir/ski_quote.cpp.o.d"
  "ski_quote"
  "ski_quote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ski_quote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
