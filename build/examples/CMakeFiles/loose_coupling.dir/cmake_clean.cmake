file(REMOVE_RECURSE
  "CMakeFiles/loose_coupling.dir/loose_coupling.cpp.o"
  "CMakeFiles/loose_coupling.dir/loose_coupling.cpp.o.d"
  "loose_coupling"
  "loose_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loose_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
