# Empty dependencies file for loose_coupling.
# This may be replaced when dependencies are built.
