# Empty compiler generated dependencies file for ski_rental_jxta.
# This may be replaced when dependencies are built.
