file(REMOVE_RECURSE
  "CMakeFiles/ski_rental_jxta.dir/ski_rental_jxta.cpp.o"
  "CMakeFiles/ski_rental_jxta.dir/ski_rental_jxta.cpp.o.d"
  "ski_rental_jxta"
  "ski_rental_jxta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ski_rental_jxta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
