file(REMOVE_RECURSE
  "CMakeFiles/file_share.dir/file_share.cpp.o"
  "CMakeFiles/file_share.dir/file_share.cpp.o.d"
  "file_share"
  "file_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
