# Empty compiler generated dependencies file for file_share.
# This may be replaced when dependencies are built.
