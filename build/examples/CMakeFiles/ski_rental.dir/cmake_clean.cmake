file(REMOVE_RECURSE
  "CMakeFiles/ski_rental.dir/ski_rental.cpp.o"
  "CMakeFiles/ski_rental.dir/ski_rental.cpp.o.d"
  "ski_rental"
  "ski_rental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ski_rental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
