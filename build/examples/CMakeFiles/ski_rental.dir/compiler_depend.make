# Empty compiler generated dependencies file for ski_rental.
# This may be replaced when dependencies are built.
