file(REMOVE_RECURSE
  "CMakeFiles/news_hierarchy.dir/news_hierarchy.cpp.o"
  "CMakeFiles/news_hierarchy.dir/news_hierarchy.cpp.o.d"
  "news_hierarchy"
  "news_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
