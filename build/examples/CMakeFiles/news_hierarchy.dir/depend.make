# Empty dependencies file for news_hierarchy.
# This may be replaced when dependencies are built.
