# Empty dependencies file for beyond_latency.
# This may be replaced when dependencies are built.
