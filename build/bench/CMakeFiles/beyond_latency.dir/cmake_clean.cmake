file(REMOVE_RECURSE
  "CMakeFiles/beyond_latency.dir/beyond_latency.cpp.o"
  "CMakeFiles/beyond_latency.dir/beyond_latency.cpp.o.d"
  "beyond_latency"
  "beyond_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beyond_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
