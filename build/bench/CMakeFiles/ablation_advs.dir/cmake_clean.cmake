file(REMOVE_RECURSE
  "CMakeFiles/ablation_advs.dir/ablation_advs.cpp.o"
  "CMakeFiles/ablation_advs.dir/ablation_advs.cpp.o.d"
  "ablation_advs"
  "ablation_advs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_advs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
