# Empty compiler generated dependencies file for ablation_advs.
# This may be replaced when dependencies are built.
