file(REMOVE_RECURSE
  "CMakeFiles/table_programming_effort.dir/table_programming_effort.cpp.o"
  "CMakeFiles/table_programming_effort.dir/table_programming_effort.cpp.o.d"
  "table_programming_effort"
  "table_programming_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_programming_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
