# Empty compiler generated dependencies file for table_programming_effort.
# This may be replaced when dependencies are built.
