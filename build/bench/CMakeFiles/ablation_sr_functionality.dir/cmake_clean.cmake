file(REMOVE_RECURSE
  "CMakeFiles/ablation_sr_functionality.dir/ablation_sr_functionality.cpp.o"
  "CMakeFiles/ablation_sr_functionality.dir/ablation_sr_functionality.cpp.o.d"
  "ablation_sr_functionality"
  "ablation_sr_functionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sr_functionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
