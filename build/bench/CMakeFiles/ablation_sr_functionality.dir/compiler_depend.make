# Empty compiler generated dependencies file for ablation_sr_functionality.
# This may be replaced when dependencies are built.
