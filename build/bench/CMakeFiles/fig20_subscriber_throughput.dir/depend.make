# Empty dependencies file for fig20_subscriber_throughput.
# This may be replaced when dependencies are built.
