file(REMOVE_RECURSE
  "CMakeFiles/fig20_subscriber_throughput.dir/fig20_subscriber_throughput.cpp.o"
  "CMakeFiles/fig20_subscriber_throughput.dir/fig20_subscriber_throughput.cpp.o.d"
  "fig20_subscriber_throughput"
  "fig20_subscriber_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_subscriber_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
