file(REMOVE_RECURSE
  "CMakeFiles/fig19_publisher_throughput.dir/fig19_publisher_throughput.cpp.o"
  "CMakeFiles/fig19_publisher_throughput.dir/fig19_publisher_throughput.cpp.o.d"
  "fig19_publisher_throughput"
  "fig19_publisher_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_publisher_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
