file(REMOVE_RECURSE
  "CMakeFiles/fig18_invocation_time.dir/fig18_invocation_time.cpp.o"
  "CMakeFiles/fig18_invocation_time.dir/fig18_invocation_time.cpp.o.d"
  "fig18_invocation_time"
  "fig18_invocation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_invocation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
