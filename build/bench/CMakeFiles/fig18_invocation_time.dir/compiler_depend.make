# Empty compiler generated dependencies file for fig18_invocation_time.
# This may be replaced when dependencies are built.
