file(REMOVE_RECURSE
  "CMakeFiles/jxta_core_test.dir/jxta_core_test.cpp.o"
  "CMakeFiles/jxta_core_test.dir/jxta_core_test.cpp.o.d"
  "jxta_core_test"
  "jxta_core_test.pdb"
  "jxta_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jxta_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
