# Empty dependencies file for jxta_core_test.
# This may be replaced when dependencies are built.
