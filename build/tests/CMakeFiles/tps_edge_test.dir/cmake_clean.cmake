file(REMOVE_RECURSE
  "CMakeFiles/tps_edge_test.dir/tps_edge_test.cpp.o"
  "CMakeFiles/tps_edge_test.dir/tps_edge_test.cpp.o.d"
  "tps_edge_test"
  "tps_edge_test.pdb"
  "tps_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
