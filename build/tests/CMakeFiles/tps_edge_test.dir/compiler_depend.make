# Empty compiler generated dependencies file for tps_edge_test.
# This may be replaced when dependencies are built.
