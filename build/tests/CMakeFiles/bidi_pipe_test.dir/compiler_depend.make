# Empty compiler generated dependencies file for bidi_pipe_test.
# This may be replaced when dependencies are built.
