file(REMOVE_RECURSE
  "CMakeFiles/bidi_pipe_test.dir/bidi_pipe_test.cpp.o"
  "CMakeFiles/bidi_pipe_test.dir/bidi_pipe_test.cpp.o.d"
  "bidi_pipe_test"
  "bidi_pipe_test.pdb"
  "bidi_pipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bidi_pipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
