# Empty compiler generated dependencies file for srjxta_test.
# This may be replaced when dependencies are built.
