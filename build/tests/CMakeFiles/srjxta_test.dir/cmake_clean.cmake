file(REMOVE_RECURSE
  "CMakeFiles/srjxta_test.dir/srjxta_test.cpp.o"
  "CMakeFiles/srjxta_test.dir/srjxta_test.cpp.o.d"
  "srjxta_test"
  "srjxta_test.pdb"
  "srjxta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srjxta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
