# Empty dependencies file for services_layer_test.
# This may be replaced when dependencies are built.
