file(REMOVE_RECURSE
  "CMakeFiles/services_layer_test.dir/services_layer_test.cpp.o"
  "CMakeFiles/services_layer_test.dir/services_layer_test.cpp.o.d"
  "services_layer_test"
  "services_layer_test.pdb"
  "services_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/services_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
