file(REMOVE_RECURSE
  "CMakeFiles/jxta_protocols_test.dir/jxta_protocols_test.cpp.o"
  "CMakeFiles/jxta_protocols_test.dir/jxta_protocols_test.cpp.o.d"
  "jxta_protocols_test"
  "jxta_protocols_test.pdb"
  "jxta_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jxta_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
