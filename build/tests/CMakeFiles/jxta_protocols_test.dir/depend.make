# Empty dependencies file for jxta_protocols_test.
# This may be replaced when dependencies are built.
