# Empty dependencies file for jxta_services_test.
# This may be replaced when dependencies are built.
