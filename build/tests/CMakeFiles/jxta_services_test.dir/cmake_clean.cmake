file(REMOVE_RECURSE
  "CMakeFiles/jxta_services_test.dir/jxta_services_test.cpp.o"
  "CMakeFiles/jxta_services_test.dir/jxta_services_test.cpp.o.d"
  "jxta_services_test"
  "jxta_services_test.pdb"
  "jxta_services_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jxta_services_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
