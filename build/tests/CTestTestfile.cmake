# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/jxta_core_test[1]_include.cmake")
include("/root/repo/build/tests/jxta_protocols_test[1]_include.cmake")
include("/root/repo/build/tests/jxta_services_test[1]_include.cmake")
include("/root/repo/build/tests/serial_test[1]_include.cmake")
include("/root/repo/build/tests/tps_test[1]_include.cmake")
include("/root/repo/build/tests/srjxta_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/services_layer_test[1]_include.cmake")
include("/root/repo/build/tests/wire_format_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/tps_edge_test[1]_include.cmake")
include("/root/repo/build/tests/bidi_pipe_test[1]_include.cmake")
