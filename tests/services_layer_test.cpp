// Tests for the JXTA service layer additions: active ERP route resolution,
// the CMS (content) service, the monitoring service, and discovery-cache
// persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "obs/metrics.h"
#include "support/test_net.h"

namespace p2p::jxta {
namespace {

using p2p::testing::TestNet;
using p2p::testing::wait_until;

// --- RouteResolverService (active ERP) ---------------------------------------------

TEST(RouteResolverTest, LearnsRouteViaRelayAndDelivers) {
  TestNet net;
  Peer& relay = net.add_peer("relay", /*rendezvous=*/false, /*router=*/true);
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  net.fabric().partition("alice", "bob");  // no direct path
  // alice can talk to the relay; the relay can reach bob.
  alice.endpoint().learn_peer(relay.id(), {net::Address("inproc", "relay")},
                              true);
  relay.endpoint().learn_peer(bob.id(), {net::Address("inproc", "bob")},
                              false);
  // alice has no idea how to reach bob; ERP finds out.
  const auto route = alice.routes().resolve_route(
      bob.id(), std::chrono::milliseconds(3000));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->dest, bob.id());
  ASSERT_FALSE(route->hops.empty());
  EXPECT_EQ(route->hops.front(), relay.id());
  // And the route actually works end to end.
  std::atomic<int> got{0};
  bob.endpoint().register_listener("svc", [&](EndpointMessage) { ++got; });
  EXPECT_TRUE(alice.endpoint().send(bob.id(), "svc", {1}));
  EXPECT_TRUE(wait_until([&] { return got == 1; }));
}

TEST(RouteResolverTest, DestinationAnswersItself) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  const auto route = alice.routes().resolve_route(
      bob.id(), std::chrono::milliseconds(3000));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->dest, bob.id());
  EXPECT_TRUE(route->hops.empty());  // direct: bob answered himself
}

TEST(RouteResolverTest, UnreachableDestinationTimesOut) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  EXPECT_FALSE(alice.routes()
                   .resolve_route(PeerId::generate(),
                                  std::chrono::milliseconds(300))
                   .has_value());
}

TEST(RouteResolverTest, RouteAdvertisementCachedInDiscovery) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  ASSERT_TRUE(alice.routes()
                  .resolve_route(bob.id(), std::chrono::milliseconds(3000))
                  .has_value());
  const auto cached = alice.discovery().get_local(DiscoveryType::kAdv);
  bool found = false;
  for (const auto& adv : cached) {
    if (adv->doc_type() == std::string(RouteAdvertisement::kDocType)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- CmsService -----------------------------------------------------------------------

TEST(CmsTest, ShareSearchFetchRoundTrip) {
  TestNet net;
  Peer& provider = net.add_peer("provider");
  Peer& consumer = net.add_peer("consumer");
  const util::Bytes content = util::to_bytes("the powder snow report 2026");
  const auto adv =
      provider.cms().share("snow-report.txt", "season snow data", content);
  EXPECT_EQ(adv.size, content.size());
  EXPECT_EQ(adv.provider, provider.id());

  const auto hits = consumer.cms().search("snow-report*",
                                          std::chrono::milliseconds(400));
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].id, adv.id);
  EXPECT_EQ(hits[0].name, "snow-report.txt");

  const auto fetched =
      consumer.cms().fetch(hits[0], std::chrono::milliseconds(3000));
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, content);
}

TEST(CmsTest, SearchMatchesDescriptionToo) {
  TestNet net;
  Peer& provider = net.add_peer("provider");
  Peer& consumer = net.add_peer("consumer");
  provider.cms().share("a.bin", "alpine trail maps", {1, 2, 3});
  const auto hits =
      consumer.cms().search("*trail*", std::chrono::milliseconds(400));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].name, "a.bin");
}

TEST(CmsTest, NoMatchesYieldsEmpty) {
  TestNet net;
  Peer& provider = net.add_peer("provider");
  Peer& consumer = net.add_peer("consumer");
  provider.cms().share("a.bin", "x", {1});
  EXPECT_TRUE(consumer.cms()
                  .search("zzz*", std::chrono::milliseconds(300))
                  .empty());
}

TEST(CmsTest, UnshareStopsAnswering) {
  TestNet net;
  Peer& provider = net.add_peer("provider");
  Peer& consumer = net.add_peer("consumer");
  const auto adv = provider.cms().share("gone.bin", "x", {1, 2});
  provider.cms().unshare(adv.id);
  EXPECT_TRUE(provider.cms().shared().empty());
  EXPECT_TRUE(consumer.cms()
                  .search("gone*", std::chrono::milliseconds(300))
                  .empty());
  EXPECT_FALSE(consumer.cms()
                   .fetch(adv, std::chrono::milliseconds(300))
                   .has_value());
}

TEST(CmsTest, IdenticalContentDerivesIdenticalCodatId) {
  TestNet net;
  Peer& a = net.add_peer("a");
  Peer& b = net.add_peer("b");
  const util::Bytes content = util::to_bytes("same bytes");
  const auto adv_a = a.cms().share("one-name", "d", content);
  const auto adv_b = b.cms().share("other-name", "d", content);
  EXPECT_EQ(adv_a.id, adv_b.id);  // codat identity is content-derived
  EXPECT_NE(adv_a.identity(), adv_b.identity());  // but providers differ
}

TEST(CmsTest, OversizedContentRejected) {
  TestNet net;
  Peer& a = net.add_peer("a");
  util::Bytes huge(CmsService::kMaxContentBytes + 1, 0x00);
  EXPECT_THROW((void)a.cms().share("huge", "x", std::move(huge)),
               util::InvalidArgument);
}

TEST(CmsTest, ContentAdvertisementXmlRoundTrip) {
  ContentAdvertisement adv;
  adv.id = CodatId::generate();
  adv.name = "file.txt";
  adv.description = "a file";
  adv.size = 123;
  adv.provider = PeerId::generate();
  const auto back =
      ContentAdvertisement::from_xml(xml::parse(adv.to_xml_text()));
  EXPECT_EQ(back.id, adv.id);
  EXPECT_EQ(back.name, adv.name);
  EXPECT_EQ(back.description, adv.description);
  EXPECT_EQ(back.size, adv.size);
  EXPECT_EQ(back.provider, adv.provider);
  // And the factory knows the kind.
  ContentAdvertisement::register_with_factory();
  const auto parsed =
      AdvertisementFactory::instance().parse_text(adv.to_xml_text());
  EXPECT_EQ(parsed->doc_type(), std::string(ContentAdvertisement::kDocType));
}

// --- PeerInfo survey + MonitoringService -------------------------------------------------

TEST(SurveyTest, CollectsAllGroupMembers) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  net.add_peer("bob");
  net.add_peer("carol");
  const auto infos = alice.info().survey(std::chrono::milliseconds(400));
  // bob + carol answer (alice does not answer her own propagated query).
  EXPECT_GE(infos.size(), 2u);
}

TEST(MonitoringTest, SweepDiscoversPeersAndNotifies) {
  TestNet net;
  Peer& monitor = net.add_peer("monitor");
  Peer& worker = net.add_peer("worker");
  std::atomic<int> appeared{0};
  monitor.monitoring().set_liveness_listener(
      [&](const PeerInfo& info, bool alive) {
        if (alive && info.name == "worker") ++appeared;
      });
  monitor.monitoring().sweep();
  EXPECT_GE(monitor.monitoring().live_peer_count(), 1u);
  EXPECT_EQ(appeared, 1);
  const auto status = monitor.monitoring().status_of(worker.id());
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->info.name, "worker");
}

TEST(MonitoringTest, SilentPeerAgesOut) {
  net::NetworkFabric fabric;
  util::ManualClock clock;
  PeerConfig config;
  config.name = "monitor";
  config.heartbeat = std::chrono::hours(1);
  Peer monitor(config, clock);
  monitor.add_transport(
      std::make_shared<net::InProcTransport>(fabric, "monitor"));
  monitor.start();
  PeerConfig worker_config;
  worker_config.name = "worker";
  worker_config.heartbeat = std::chrono::hours(1);
  auto worker = std::make_unique<Peer>(worker_config, clock);
  worker->add_transport(
      std::make_shared<net::InProcTransport>(fabric, "worker"));
  worker->start();

  std::atomic<int> vanished{0};
  monitor.monitoring().set_liveness_listener(
      [&](const PeerInfo& info, bool alive) {
        if (!alive && info.name == "worker") ++vanished;
      });
  monitor.monitoring().sweep();
  // The monitor sees the worker and itself (it answers its own survey).
  ASSERT_EQ(monitor.monitoring().live_peer_count(), 2u);
  // Worker dies; time passes beyond the liveness timeout; next sweep ages
  // it out while the monitor's own entry is refreshed.
  worker->stop();
  worker.reset();
  clock.advance(std::chrono::milliseconds(20'000));
  monitor.monitoring().sweep();
  EXPECT_EQ(monitor.monitoring().live_peer_count(), 1u);
  EXPECT_EQ(vanished, 1);
  monitor.stop();
}

TEST(MonitoringTest, PeriodicSweepsRun) {
  TestNet net;
  Peer& monitor = net.add_peer("monitor");
  net.add_peer("worker");
  monitor.monitoring().start();
  EXPECT_TRUE(
      wait_until([&] { return monitor.monitoring().live_peer_count() >= 1; },
                 std::chrono::milliseconds(8000)));
  monitor.monitoring().stop();
}

TEST(MonitoringTest, SweepReportsRegistrySourcedTraffic) {
  if (!obs::enabled()) GTEST_SKIP() << "asserts registry-sourced counters";
  // After a publish round-trip between alice and bob, a PIP sweep from a
  // third peer must report non-zero message/byte counters for both — the
  // numbers flow from each peer's obs::Registry through PeerInfoService.
  TestNet net;
  Peer& monitor = net.add_peer("monitor");
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");

  bob.endpoint().register_listener("ping", [&](EndpointMessage msg) {
    bob.endpoint().send(msg.src, "pong", {2});
  });
  std::atomic<int> answered{0};
  alice.endpoint().register_listener("pong",
                                     [&](EndpointMessage) { ++answered; });
  // Retried: the first send may predate address discovery.
  ASSERT_TRUE(wait_until([&] {
    return alice.endpoint().send(bob.id(), "ping", {1}) && answered > 0;
  }));

  const auto live_traffic = [&](const Peer& peer) {
    const auto status = monitor.monitoring().status_of(peer.id());
    return status.has_value() && status->info.traffic.msgs_sent > 0 &&
           status->info.traffic.bytes_sent > 0 &&
           status->info.traffic.msgs_received > 0 &&
           status->info.traffic.bytes_received > 0;
  };
  ASSERT_TRUE(wait_until([&] {
    monitor.monitoring().sweep();
    return live_traffic(alice) && live_traffic(bob);
  }));

  // The reported numbers come from the live registry: alice's own counter
  // is at least what the sweep saw a moment ago.
  const auto status = monitor.monitoring().status_of(alice.id());
  ASSERT_TRUE(status.has_value());
  EXPECT_GE(alice.metrics().snapshot().counter("net.msgs_sent"),
            status->info.traffic.msgs_sent);
}

// --- discovery persistence ------------------------------------------------------------

class TempFile {
 public:
  TempFile() : path_(std::filesystem::temp_directory_path() /
                     ("p2p_cache_" + util::Uuid::generate().to_string())) {}
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST(DiscoveryPersistenceTest, SaveLoadRoundTrip) {
  TempFile file;
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  // Populate alice's cache with a group advertisement.
  PipeAdvertisement pipe;
  pipe.pid = PipeId::derive("persist-pipe");
  pipe.name = "Persist";
  pipe.type = PipeAdvertisement::Type::kPropagate;
  PeerGroupAdvertisement group;
  group.gid = PeerGroupId::derive("persist-group");
  group.creator = alice.id();
  group.name = "PS_Persist";
  auto wire = WireService::make_service_advertisement(pipe);
  group.services.emplace(wire.name, std::move(wire));
  alice.discovery().publish(group, DiscoveryType::kGroup);

  const std::size_t saved = alice.discovery().save_cache(file.path());
  EXPECT_GE(saved, 2u);  // own peer adv + the group adv

  // A different peer loads the snapshot ("stable storage" survives the
  // peer process).
  EXPECT_EQ(bob.discovery()
                .get_local(DiscoveryType::kGroup, "Name", "PS_Persist")
                .size(),
            0u);
  const std::size_t loaded = bob.discovery().load_cache(file.path());
  EXPECT_EQ(loaded, saved);
  EXPECT_EQ(bob.discovery()
                .get_local(DiscoveryType::kGroup, "Name", "PS_Persist")
                .size(),
            1u);
}

TEST(DiscoveryPersistenceTest, ExpiredEntriesNotSaved) {
  TempFile file;
  net::NetworkFabric fabric;
  util::ManualClock clock;
  PeerConfig config;
  config.name = "alice";
  config.heartbeat = std::chrono::hours(1);
  Peer alice(config, clock);
  alice.add_transport(std::make_shared<net::InProcTransport>(fabric, "alice"));
  alice.start();
  PeerGroupAdvertisement group;
  group.gid = PeerGroupId::generate();
  group.creator = alice.id();
  group.name = "PS_Short";
  alice.discovery().publish(group, DiscoveryType::kGroup,
                            /*lifetime_ms=*/500);
  clock.advance(std::chrono::milliseconds(1000));
  const std::size_t saved = alice.discovery().save_cache(file.path());
  // Own peer adv may still be live; the expired group adv must not be.
  Peer bob_like(config, clock);
  bob_like.add_transport(
      std::make_shared<net::InProcTransport>(fabric, "alice2"));
  bob_like.start();
  bob_like.discovery().load_cache(file.path());
  EXPECT_TRUE(bob_like.discovery()
                  .get_local(DiscoveryType::kGroup, "Name", "PS_Short")
                  .empty());
  (void)saved;
  bob_like.stop();
  alice.stop();
}

TEST(DiscoveryPersistenceTest, MissingFileLoadsNothing) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  EXPECT_EQ(alice.discovery().load_cache("/nonexistent/path/cache"), 0u);
}

}  // namespace
}  // namespace p2p::jxta
