// Tests for the six JXTA protocols over live peers on the simulated fabric:
// endpoint/ERP, rendezvous, PRP, PDP, PIP, PBP (+ wire, membership, groups).
#include <gtest/gtest.h>

#include <atomic>

#include "jxta/peer.h"
#include "obs/metrics.h"
#include "support/test_net.h"
#include "support/timing.h"

namespace p2p::jxta {
namespace {

using testing::TestNet;
using testing::wait_until;

// --- EndpointService / ERP ------------------------------------------------------

TEST(EndpointTest, LocalLoopbackDelivery) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  std::atomic<int> got{0};
  alice.endpoint().register_listener("test.svc", [&](EndpointMessage msg) {
    EXPECT_EQ(msg.src, alice.id());
    ++got;
  });
  EXPECT_TRUE(alice.endpoint().send(alice.id(), "test.svc", {1, 2}));
  EXPECT_TRUE(wait_until([&] { return got == 1; }));
}

TEST(EndpointTest, RemoteDeliveryAfterLearningAddress) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  std::atomic<int> got{0};
  bob.endpoint().register_listener("test.svc",
                                   [&](EndpointMessage) { ++got; });
  alice.endpoint().learn_peer(bob.id(), {net::Address("inproc", "bob")},
                              false);
  EXPECT_TRUE(alice.endpoint().send(bob.id(), "test.svc", {1}));
  EXPECT_TRUE(wait_until([&] { return got == 1; }));
}

TEST(EndpointTest, SendFailsWithNoRouteAtAll) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  EXPECT_FALSE(alice.endpoint().send(PeerId::generate(), "svc", {1}));
  if (obs::enabled()) {
    EXPECT_EQ(alice.endpoint().traffic().send_failures, 1u);
  }
}

TEST(EndpointTest, ObservedEnvelopeAddressEnablesReply) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  std::atomic<int> bob_got{0};
  std::atomic<int> alice_got{0};
  bob.endpoint().register_listener("ping", [&](EndpointMessage msg) {
    ++bob_got;
    // Reply without ever having been told alice's address explicitly:
    // the endpoint learned it from the incoming envelope.
    EXPECT_TRUE(bob.endpoint().send(msg.src, "pong", {}));
  });
  alice.endpoint().register_listener("pong",
                                     [&](EndpointMessage) { ++alice_got; });
  alice.endpoint().learn_peer(bob.id(), {net::Address("inproc", "bob")},
                              false);
  alice.endpoint().send(bob.id(), "ping", {});
  EXPECT_TRUE(wait_until([&] { return alice_got == 1; }));
}

TEST(EndpointTest, RelayRoutesAroundMissingDirectPath) {
  TestNet net;
  Peer& relay = net.add_peer("relay", /*rendezvous=*/false, /*router=*/true);
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  // No direct path between alice and bob (so start-up broadcasts cannot
  // teach alice a usable direct address); the relay is the only route.
  net.fabric().partition("alice", "bob");
  // alice knows the relay, and knows bob is reachable via the relay.
  alice.endpoint().learn_peer(relay.id(), {net::Address("inproc", "relay")},
                              /*relay_capable=*/true);
  alice.endpoint().learn_route(bob.id(), relay.id());
  // The relay knows bob directly.
  relay.endpoint().learn_peer(bob.id(), {net::Address("inproc", "bob")},
                              false);
  std::atomic<int> got{0};
  bob.endpoint().register_listener("svc", [&](EndpointMessage msg) {
    EXPECT_EQ(msg.src, alice.id());  // original source survives relaying
    ++got;
  });
  EXPECT_TRUE(alice.endpoint().send(bob.id(), "svc", {42}));
  EXPECT_TRUE(wait_until([&] { return got == 1; }));
  if (obs::enabled()) {
    EXPECT_TRUE(wait_until(
        [&] { return relay.endpoint().traffic().msgs_relayed >= 1; }));
  }
}

TEST(EndpointTest, NonRouterRefusesRelayDuty) {
  TestNet net;
  Peer& bystander = net.add_peer("bystander");  // router=false
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  net.fabric().partition("alice", "bob");  // force the relay attempt
  alice.endpoint().learn_peer(bystander.id(),
                              {net::Address("inproc", "bystander")},
                              /*relay_capable=*/true);  // alice THINKS so
  alice.endpoint().learn_route(bob.id(), bystander.id());
  bystander.endpoint().learn_peer(bob.id(), {net::Address("inproc", "bob")},
                                  false);
  std::atomic<int> got{0};
  bob.endpoint().register_listener("svc", [&](EndpointMessage) { ++got; });
  alice.endpoint().send(bob.id(), "svc", {1});
  p2p::testing::settle(std::chrono::milliseconds(200));
  EXPECT_EQ(got, 0);  // bystander dropped it
}

TEST(EndpointTest, TrafficCountersAdvance) {
  if (!obs::enabled()) GTEST_SKIP() << "asserts counters advance";
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  alice.endpoint().learn_peer(bob.id(), {net::Address("inproc", "bob")},
                              false);
  std::atomic<int> got{0};
  bob.endpoint().register_listener("svc", [&](EndpointMessage) { ++got; });
  const auto before_tx = alice.endpoint().traffic();
  const auto before_rx = bob.endpoint().traffic();
  alice.endpoint().send(bob.id(), "svc", {1, 2, 3, 4});
  ASSERT_TRUE(wait_until([&] { return got == 1; }));
  EXPECT_GT(alice.endpoint().traffic().msgs_sent, before_tx.msgs_sent);
  EXPECT_GT(bob.endpoint().traffic().msgs_received, before_rx.msgs_received);
  EXPECT_GE(bob.endpoint().traffic().bytes_received,
            before_rx.bytes_received + 4);
}

TEST(EndpointTest, AddressBookNewestFirstAndForgettable) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  const PeerId target = PeerId::generate();
  alice.endpoint().learn_peer(target, {net::Address("inproc", "old")}, false);
  alice.endpoint().learn_peer(target, {net::Address("inproc", "new")}, false);
  const auto addrs = alice.endpoint().addresses_of(target);
  ASSERT_EQ(addrs.size(), 2u);
  EXPECT_EQ(addrs[0].authority(), "new");
  alice.endpoint().forget_peer(target);
  EXPECT_TRUE(alice.endpoint().addresses_of(target).empty());
}

// --- RendezvousService -------------------------------------------------------------

TEST(RendezvousTest, ClientObtainsLease) {
  TestNet net;
  net.add_peer("rdv", /*rendezvous=*/true);
  Peer& client = net.add_peer("client", false, false, {"rdv"});
  EXPECT_TRUE(wait_until([&] { return client.rendezvous().connected(); }));
  EXPECT_EQ(client.rendezvous().lessors().size(), 1u);
}

TEST(RendezvousTest, RdvTracksClients) {
  TestNet net;
  Peer& rdv = net.add_peer("rdv", true);
  net.add_peer("c1", false, false, {"rdv"});
  net.add_peer("c2", false, false, {"rdv"});
  EXPECT_TRUE(
      wait_until([&] { return rdv.rendezvous().clients().size() == 2; }));
}

TEST(RendezvousTest, NonRendezvousDoesNotGrantLeases) {
  TestNet net;
  net.add_peer("plain", /*rendezvous=*/false);
  Peer& client = net.add_peer("client", false, false, {"plain"});
  p2p::testing::settle(std::chrono::milliseconds(400));
  EXPECT_FALSE(client.rendezvous().connected());
}

TEST(RendezvousTest, PropagateReachesClientsOfRdv) {
  TestNet net;
  // Clients are firewalled: the ONLY path between them is via the rdv
  // (multicast does not reach firewalled nodes).
  Peer& rdv = net.add_peer("rdv", true);
  Peer& c1 = net.add_peer("c1", false, false, {"rdv"});
  Peer& c2 = net.add_peer("c2", false, false, {"rdv"});
  net.fabric().set_firewalled("c1", true);
  net.fabric().set_firewalled("c2", true);
  // A firewalled client is reachable only after its first post-firewall
  // outbound (the lease renewal punches the hole); force one now.
  c1.tick();
  c2.tick();
  ASSERT_TRUE(wait_until([&] {
    return rdv.rendezvous().clients().size() == 2 &&
           c1.rendezvous().connected() && c2.rendezvous().connected();
  }));
  std::atomic<int> got{0};
  c2.endpoint().register_listener("custom.svc",
                                  [&](EndpointMessage) { ++got; });
  c1.rendezvous().propagate("custom.svc", {7});
  EXPECT_TRUE(wait_until([&] { return got >= 1; }));
}

TEST(RendezvousTest, PropagationLoopSuppression) {
  TestNet net;
  Peer& rdv = net.add_peer("rdv", true);
  Peer& c1 = net.add_peer("c1", false, false, {"rdv"});
  Peer& c2 = net.add_peer("c2", false, false, {"rdv"});
  ASSERT_TRUE(wait_until([&] { return rdv.rendezvous().clients().size() == 2; }));
  std::atomic<int> got{0};
  c2.endpoint().register_listener("svc", [&](EndpointMessage) { ++got; });
  c1.rendezvous().propagate("svc", {1});
  ASSERT_TRUE(wait_until([&] { return got >= 1; }));
  // The message travels both multicast and via the rdv; c2 must deliver it
  // exactly once thanks to the propagation-id seen-set.
  p2p::testing::settle(std::chrono::milliseconds(300));
  EXPECT_EQ(got, 1);
}

TEST(RendezvousTest, LeaseExpiresWithoutRenewal) {
  // Manual-clock variant: build services directly so we control time.
  net::NetworkFabric fabric;
  util::ManualClock clock;
  jxta::PeerConfig config;
  config.name = "rdv";
  config.rendezvous = true;
  config.heartbeat = std::chrono::hours(1);  // no automatic ticks
  config.rdv.lease_ttl = std::chrono::milliseconds(500);
  Peer rdv(config, clock);
  rdv.add_transport(std::make_shared<net::InProcTransport>(fabric, "rdv"));
  rdv.start();

  jxta::PeerConfig client_config;
  client_config.name = "client";
  client_config.heartbeat = std::chrono::hours(1);
  client_config.seed_rendezvous = {net::Address("inproc", "client-seed")};
  Peer client(client_config, clock);
  client.add_transport(
      std::make_shared<net::InProcTransport>(fabric, "client"));
  client.start();
  // Point the seed at the rdv's real transport name.
  client.rendezvous().add_seed(net::Address("inproc", "rdv"));
  client.tick();
  ASSERT_TRUE(wait_until([&] { return client.rendezvous().connected(); }));
  clock.advance(std::chrono::milliseconds(1000));
  EXPECT_FALSE(client.rendezvous().connected());
  EXPECT_TRUE(rdv.rendezvous().clients().empty());
  client.stop();
  rdv.stop();
}

// --- ResolverService (PRP) ------------------------------------------------------------

class EchoHandler final : public ResolverHandler {
 public:
  std::optional<util::Bytes> process_query(const ResolverQuery& q) override {
    ++queries;
    if (silent) return std::nullopt;
    util::Bytes reply = q.payload;
    reply.push_back(0xEE);
    return reply;
  }
  void process_response(const ResolverResponse& r) override {
    last_payload = r.payload;
    last_responder = r.responder;
    // Bumped last: waiters poll `responses`, then read the fields above —
    // the atomic publish is what orders those reads after our writes.
    ++responses;
  }
  std::atomic<int> queries{0};
  std::atomic<int> responses{0};
  bool silent = false;
  util::Bytes last_payload;
  PeerId last_responder;
};

TEST(ResolverTest, DirectedQueryGetsResponse) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  auto alice_handler = std::make_shared<EchoHandler>();
  auto bob_handler = std::make_shared<EchoHandler>();
  alice.resolver().register_handler("echo", alice_handler);
  bob.resolver().register_handler("echo", bob_handler);
  alice.endpoint().learn_peer(bob.id(), {net::Address("inproc", "bob")},
                              false);
  alice.resolver().send_query("echo", {1, 2}, bob.id());
  EXPECT_TRUE(wait_until([&] { return alice_handler->responses == 1; }));
  EXPECT_EQ(alice_handler->last_payload, (util::Bytes{1, 2, 0xEE}));
  EXPECT_EQ(alice_handler->last_responder, bob.id());
  EXPECT_EQ(bob_handler->queries, 1);
}

TEST(ResolverTest, PropagatedQueryReachesAllPeers) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  Peer& carol = net.add_peer("carol");
  auto alice_handler = std::make_shared<EchoHandler>();
  auto bob_handler = std::make_shared<EchoHandler>();
  auto carol_handler = std::make_shared<EchoHandler>();
  alice.resolver().register_handler("echo", alice_handler);
  bob.resolver().register_handler("echo", bob_handler);
  carol.resolver().register_handler("echo", carol_handler);
  alice.resolver().send_query("echo", {5});
  // Both remote peers answer; alice collects 2 remote + 1 self response.
  EXPECT_TRUE(wait_until([&] { return alice_handler->responses == 3; }));
  EXPECT_EQ(bob_handler->queries, 1);
  EXPECT_EQ(carol_handler->queries, 1);
}

TEST(ResolverTest, SilentHandlerYieldsNoResponse) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  auto alice_handler = std::make_shared<EchoHandler>();
  auto bob_handler = std::make_shared<EchoHandler>();
  bob_handler->silent = true;
  alice.resolver().register_handler("echo", alice_handler);
  bob.resolver().register_handler("echo", bob_handler);
  alice.endpoint().learn_peer(bob.id(), {net::Address("inproc", "bob")},
                              false);
  alice.resolver().send_query("echo", {1}, bob.id());
  EXPECT_TRUE(wait_until([&] { return bob_handler->queries == 1; }));
  p2p::testing::settle(std::chrono::milliseconds(100));
  EXPECT_EQ(alice_handler->responses, 0);
}

TEST(ResolverTest, ExpiredHandlerIsSkippedSafely) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  {
    auto ephemeral = std::make_shared<EchoHandler>();
    bob.resolver().register_handler("gone", ephemeral);
  }  // handler destroyed; weak_ptr dangles
  alice.endpoint().learn_peer(bob.id(), {net::Address("inproc", "bob")},
                              false);
  alice.resolver().send_query("gone", {1}, bob.id());
  p2p::testing::settle(std::chrono::milliseconds(100));
  // Nothing crashes; no response arrives.
  SUCCEED();
}

TEST(ResolverTest, UnregisterStopsProcessing) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  auto handler = std::make_shared<EchoHandler>();
  bob.resolver().register_handler("echo", handler);
  bob.resolver().unregister_handler("echo");
  alice.endpoint().learn_peer(bob.id(), {net::Address("inproc", "bob")},
                              false);
  alice.resolver().send_query("echo", {1}, bob.id());
  p2p::testing::settle(std::chrono::milliseconds(150));
  EXPECT_EQ(handler->queries, 0);
}

}  // namespace
}  // namespace p2p::jxta
