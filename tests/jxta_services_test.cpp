// Tests for discovery (PDP), pipes (PBP), wire, peer info (PIP),
// membership (PMP) and peer groups.
#include <gtest/gtest.h>

#include <atomic>

#include "jxta/peer.h"
#include "obs/metrics.h"
#include "support/test_net.h"
#include "support/timing.h"

namespace p2p::jxta {
namespace {

using testing::TestNet;
using testing::wait_until;

PipeAdvertisement make_pipe(const std::string& name,
                            PipeAdvertisement::Type type =
                                PipeAdvertisement::Type::kUnicast) {
  PipeAdvertisement adv;
  adv.pid = PipeId::derive(name);
  adv.name = name;
  adv.type = type;
  return adv;
}

PeerGroupAdvertisement make_group(const std::string& name, const Peer& peer,
                                  const std::optional<std::string>& password =
                                      std::nullopt) {
  PeerGroupAdvertisement adv;
  adv.gid = PeerGroupId::derive(name);
  adv.creator = peer.id();
  adv.name = name;
  adv.services.emplace(
      std::string(WireService::kWireName),
      WireService::make_service_advertisement(
          make_pipe(name + "-pipe", PipeAdvertisement::Type::kPropagate)));
  adv.services.emplace(
      std::string(MembershipService::kServiceName),
      MembershipService::make_service_advertisement(password));
  return adv;
}

// --- DiscoveryService (PDP) -----------------------------------------------------

TEST(DiscoveryTest, PublishThenGetLocal) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  const auto group = make_group("PS_Test", alice);
  alice.discovery().publish(group, DiscoveryType::kGroup);
  const auto found =
      alice.discovery().get_local(DiscoveryType::kGroup, "Name", "PS_Test");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->identity(), group.identity());
}

TEST(DiscoveryTest, GlobMatchingOnName) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  alice.discovery().publish(make_group("PS_SkiRental", alice),
                            DiscoveryType::kGroup);
  alice.discovery().publish(make_group("PS_News", alice),
                            DiscoveryType::kGroup);
  alice.discovery().publish(make_group("Other", alice),
                            DiscoveryType::kGroup);
  EXPECT_EQ(alice.discovery()
                .get_local(DiscoveryType::kGroup, "Name", "PS_*")
                .size(),
            2u);
  EXPECT_EQ(alice.discovery().get_local(DiscoveryType::kGroup).size(), 3u);
}

TEST(DiscoveryTest, SameIdentityReplacesNotDuplicates) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  auto group = make_group("PS_Test", alice);
  alice.discovery().publish(group, DiscoveryType::kGroup);
  group.app = "updated";
  alice.discovery().publish(group, DiscoveryType::kGroup);
  const auto found = alice.discovery().get_local(DiscoveryType::kGroup,
                                                 "Name", "PS_Test");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->field("App"), "updated");
}

TEST(DiscoveryTest, FlushClearsType) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  alice.discovery().publish(make_group("PS_A", alice), DiscoveryType::kGroup);
  alice.discovery().flush(DiscoveryType::kGroup);
  EXPECT_TRUE(alice.discovery().get_local(DiscoveryType::kGroup).empty());
  // Peer cache untouched by group flush (own peer adv still there).
  EXPECT_GE(alice.discovery().get_local(DiscoveryType::kPeer).size(), 1u);
}

TEST(DiscoveryTest, FlushByIdentity) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  const auto a = make_group("PS_A", alice);
  const auto b = make_group("PS_B", alice);
  alice.discovery().publish(a, DiscoveryType::kGroup);
  alice.discovery().publish(b, DiscoveryType::kGroup);
  alice.discovery().flush(DiscoveryType::kGroup, a.identity());
  const auto left = alice.discovery().get_local(DiscoveryType::kGroup);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0]->identity(), b.identity());
}

TEST(DiscoveryTest, ExpiryHonoursLifetime) {
  net::NetworkFabric fabric;
  util::ManualClock clock;
  PeerConfig config;
  config.name = "alice";
  config.heartbeat = std::chrono::hours(1);
  Peer alice(config, clock);
  alice.add_transport(std::make_shared<net::InProcTransport>(fabric, "alice"));
  alice.start();
  alice.discovery().publish(make_group("PS_Short", alice),
                            DiscoveryType::kGroup, /*lifetime_ms=*/1000);
  EXPECT_EQ(alice.discovery().cache_size(DiscoveryType::kGroup), 1u);
  clock.advance(std::chrono::milliseconds(1500));
  EXPECT_EQ(alice.discovery().cache_size(DiscoveryType::kGroup), 0u);
  EXPECT_TRUE(alice.discovery().get_local(DiscoveryType::kGroup).empty());
  alice.stop();
}

TEST(DiscoveryTest, RemoteQueryPopulatesCacheAndFiresListener) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  bob.discovery().publish(make_group("PS_Remote", bob),
                          DiscoveryType::kGroup);
  std::atomic<int> events{0};
  alice.discovery().add_listener([&](const DiscoveryEvent& event) {
    if (event.type == DiscoveryType::kGroup) ++events;
  });
  alice.discovery().get_remote(DiscoveryType::kGroup, "Name", "PS_Remote*");
  EXPECT_TRUE(wait_until([&] {
    return !alice.discovery()
                .get_local(DiscoveryType::kGroup, "Name", "PS_Remote")
                .empty();
  }));
  EXPECT_GE(events, 1);
}

TEST(DiscoveryTest, RemotePublishPushesUnsolicited) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  bob.discovery().remote_publish(make_group("PS_Pushed", bob),
                                 DiscoveryType::kGroup);
  EXPECT_TRUE(wait_until([&] {
    return !alice.discovery()
                .get_local(DiscoveryType::kGroup, "Name", "PS_Pushed")
                .empty();
  }));
}

TEST(DiscoveryTest, ThresholdLimitsResponse) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  for (int i = 0; i < 10; ++i) {
    bob.discovery().publish(make_group("PS_Many" + std::to_string(i), bob),
                            DiscoveryType::kGroup);
  }
  alice.discovery().get_remote(DiscoveryType::kGroup, "Name", "PS_Many*",
                               /*threshold=*/3);
  ASSERT_TRUE(wait_until([&] {
    return alice.discovery()
               .get_local(DiscoveryType::kGroup, "Name", "PS_Many*")
               .size() >= 3;
  }));
  p2p::testing::settle(std::chrono::milliseconds(200));
  EXPECT_EQ(alice.discovery()
                .get_local(DiscoveryType::kGroup, "Name", "PS_Many*")
                .size(),
            3u);
}

TEST(DiscoveryTest, PeersDiscoverEachOtherOnStart) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  // Each peer remote_publishes its own advertisement at start.
  EXPECT_TRUE(wait_until([&] {
    return !alice.discovery()
                .get_local(DiscoveryType::kPeer, "Name", "bob")
                .empty() &&
           !bob.discovery()
                .get_local(DiscoveryType::kPeer, "Name", "alice")
                .empty();
  }));
}

TEST(DiscoveryTest, ListenerRemovalStopsEvents) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  std::atomic<int> events{0};
  const auto handle = alice.discovery().add_listener(
      [&](const DiscoveryEvent&) { ++events; });
  alice.discovery().remove_listener(handle);
  bob.discovery().remote_publish(make_group("PS_X", bob),
                                 DiscoveryType::kGroup);
  p2p::testing::settle(std::chrono::milliseconds(200));
  EXPECT_EQ(events, 0);
}

// --- PipeService (PBP) ----------------------------------------------------------

TEST(PipeTest, UnicastSendReceive) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  const auto adv = make_pipe("test-pipe");
  auto input = bob.pipes().create_input_pipe(adv);
  auto output = alice.pipes().create_output_pipe(adv);
  ASSERT_TRUE(output->resolved());
  Message m;
  m.add_string("k", "v");
  EXPECT_TRUE(output->send(m));
  const auto got = input->poll(std::chrono::milliseconds(2000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->get_string("k"), "v");
}

TEST(PipeTest, OutputResolutionTimesOutWithoutBinding) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  auto output = alice.pipes().create_output_pipe(
      make_pipe("nobody-listens"), std::chrono::milliseconds(200));
  EXPECT_FALSE(output->resolved());
  EXPECT_FALSE(output->send(Message{}));
}

TEST(PipeTest, ListenerDeliveryAndBacklogFlush) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  const auto adv = make_pipe("listener-pipe");
  auto input = bob.pipes().create_input_pipe(adv);
  auto output = alice.pipes().create_output_pipe(adv);
  ASSERT_TRUE(output->resolved());
  Message m;
  m.add_string("n", "1");
  output->send(m);
  // Arrives while no listener is set -> queued.
  std::atomic<int> got{0};
  ASSERT_TRUE(wait_until([&] {
    return input->poll(std::chrono::milliseconds(10)).has_value();
  }));
  input->set_listener([&](Message) { ++got; });
  output->send(m);
  EXPECT_TRUE(wait_until([&] { return got == 1; }));
}

TEST(PipeTest, MultipleInputPipesSameIdAllReceive) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  const auto adv = make_pipe("shared-pipe");
  auto input1 = bob.pipes().create_input_pipe(adv);
  auto input2 = bob.pipes().create_input_pipe(adv);
  auto output = alice.pipes().create_output_pipe(adv);
  ASSERT_TRUE(output->resolved());
  std::atomic<int> got1{0};
  std::atomic<int> got2{0};
  input1->set_listener([&](Message) { ++got1; });
  input2->set_listener([&](Message) { ++got2; });
  output->send(Message{});
  EXPECT_TRUE(wait_until([&] { return got1 == 1 && got2 == 1; }));
}

TEST(PipeTest, PropagatePipeSendsToAllBoundPeers) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  Peer& carol = net.add_peer("carol");
  const auto adv = make_pipe("prop-pipe", PipeAdvertisement::Type::kPropagate);
  auto in_bob = bob.pipes().create_input_pipe(adv);
  auto in_carol = carol.pipes().create_input_pipe(adv);
  auto output = alice.pipes().create_output_pipe(adv);
  ASSERT_TRUE(
      wait_until([&] { return output->bound_peers().size() == 2; }));
  std::atomic<int> got{0};
  in_bob->set_listener([&](Message) { ++got; });
  in_carol->set_listener([&](Message) { ++got; });
  output->send(Message{});
  EXPECT_TRUE(wait_until([&] { return got == 2; }));
}

TEST(PipeTest, ClosedInputStopsAnswering) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  const auto adv = make_pipe("closing-pipe");
  auto input = bob.pipes().create_input_pipe(adv);
  input->close();
  auto output = alice.pipes().create_output_pipe(
      adv, std::chrono::milliseconds(200));
  EXPECT_FALSE(output->resolved());
}

// The headline PBP property (paper §2.2 Fig. 5): the pipe survives the
// bound peer changing its transport address mid-conversation.
TEST(PipeTest, ReBindingAfterAddressChange) {
  net::NetworkFabric fabric;
  jxta::PeerConfig config_a;
  config_a.name = "alice";
  config_a.heartbeat = std::chrono::milliseconds(100);
  Peer alice(config_a);
  alice.add_transport(std::make_shared<net::InProcTransport>(fabric, "alice"));
  alice.start();

  jxta::PeerConfig config_b;
  config_b.name = "bob";
  config_b.heartbeat = std::chrono::milliseconds(100);
  Peer bob(config_b);
  auto bob_transport = std::make_shared<net::InProcTransport>(fabric, "bob");
  bob.add_transport(bob_transport);
  bob.start();

  const auto adv = make_pipe("mobile-pipe");
  auto input = bob.pipes().create_input_pipe(adv);
  auto output = alice.pipes().create_output_pipe(adv);
  ASSERT_TRUE(output->resolved());
  ASSERT_TRUE(output->send(Message{}));
  ASSERT_TRUE(input->poll(std::chrono::milliseconds(2000)).has_value());

  // Bob moves: same peer id, same pipe, new network address.
  ASSERT_TRUE(bob_transport->change_address("bob-roaming"));

  // Sends fail until re-resolution completes, then succeed again — without
  // recreating the pipe (fixed UUID over changing IP, as the paper puts it).
  EXPECT_TRUE(testing::wait_until([&] {
    if (output->send(Message{})) return true;
    output->resolve(std::chrono::milliseconds(100));
    return false;
  }));
  EXPECT_TRUE(input->poll(std::chrono::milliseconds(2000)).has_value());
  bob.stop();
  alice.stop();
}

// --- WireService ------------------------------------------------------------------

TEST(WireTest, ManyToManyDelivery) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  Peer& carol = net.add_peer("carol");
  const auto group_adv = make_group("wire-group", alice);
  auto g_alice = alice.create_group(group_adv);
  auto g_bob = bob.create_group(group_adv);
  auto g_carol = carol.create_group(group_adv);
  const auto pipe = *group_adv.service(WireService::kWireName)->pipe;
  auto in_bob = g_bob->wire().create_input_pipe(pipe);
  auto in_carol = g_carol->wire().create_input_pipe(pipe);
  auto out = g_alice->wire().create_output_pipe(pipe);
  std::atomic<int> got{0};
  in_bob->set_listener([&](Message) { ++got; });
  in_carol->set_listener([&](Message) { ++got; });
  Message m;
  m.add_string("x", "y");
  EXPECT_TRUE(out->send(m));
  EXPECT_TRUE(wait_until([&] { return got == 2; }));
}

TEST(WireTest, LocalInputPipeAlsoReceives) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  const auto group_adv = make_group("loop-group", alice);
  auto group = alice.create_group(group_adv);
  const auto pipe = *group_adv.service(WireService::kWireName)->pipe;
  auto input = group->wire().create_input_pipe(pipe);
  auto output = group->wire().create_output_pipe(pipe);
  output->send(Message{});
  EXPECT_TRUE(input->poll(std::chrono::milliseconds(2000)).has_value());
}

TEST(WireTest, GroupsIsolateTraffic) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  const auto adv1 = make_group("group-one", alice);
  const auto adv2 = make_group("group-two", alice);
  auto g1_alice = alice.create_group(adv1);
  auto g2_bob = bob.create_group(adv2);
  // Same pipe id in both groups; traffic must not cross group boundaries.
  const auto pipe = make_pipe("shared-name",
                              PipeAdvertisement::Type::kPropagate);
  auto out = g1_alice->wire().create_output_pipe(pipe);
  auto in = g2_bob->wire().create_input_pipe(pipe);
  out->send(Message{});
  EXPECT_FALSE(in->poll(std::chrono::milliseconds(300)).has_value());
}

TEST(WireTest, NoDuplicateSuppressionAtWireLevel) {
  // Faithful JXTA 1.0 behaviour: the SAME payload sent twice arrives twice;
  // deduplication is the SR layers' job, not the wire's.
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  const auto group_adv = make_group("dup-group", alice);
  auto g_alice = alice.create_group(group_adv);
  auto g_bob = bob.create_group(group_adv);
  const auto pipe = *group_adv.service(WireService::kWireName)->pipe;
  auto in = g_bob->wire().create_input_pipe(pipe);
  auto out = g_alice->wire().create_output_pipe(pipe);
  Message m;
  m.add_string("payload", "same");
  out->send(m.dup());
  out->send(m.dup());
  std::atomic<int> got{0};
  in->set_listener([&](Message) { ++got; });
  EXPECT_TRUE(wait_until([&] { return got == 2; }));
}

TEST(WireTest, ServiceAdvertisementCarriesPaperConstants) {
  const auto svc =
      WireService::make_service_advertisement(make_pipe("SkiRental"));
  EXPECT_EQ(svc.name, WireService::kWireName);
  EXPECT_EQ(svc.version, WireService::kWireVersion);
  EXPECT_EQ(svc.uri, WireService::kWireUri);
  EXPECT_EQ(svc.code, WireService::kWireCode);
  EXPECT_EQ(svc.security, WireService::kWireSecurity);
  EXPECT_EQ(svc.keywords, "SkiRental");  // setKeywords(pipeAdv.getName())
  ASSERT_TRUE(svc.pipe.has_value());
}

// --- PeerInfoService (PIP) ----------------------------------------------------------

TEST(PeerInfoTest, LocalInfo) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  const auto info = alice.info().local_info();
  EXPECT_EQ(info.peer, alice.id());
  EXPECT_EQ(info.name, "alice");
  EXPECT_GE(info.uptime_ms, 0);
}

TEST(PeerInfoTest, RemoteQueryReturnsStatus) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  alice.endpoint().learn_peer(bob.id(), {net::Address("inproc", "bob")},
                              false);
  const auto info =
      alice.info().query(bob.id(), std::chrono::milliseconds(3000));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->peer, bob.id());
  EXPECT_EQ(info->name, "bob");
  if (obs::enabled()) {
    EXPECT_GT(info->traffic.msgs_received, 0u);  // it received our query
  }
}

TEST(PeerInfoTest, QueryUnknownPeerTimesOut) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  EXPECT_FALSE(alice.info()
                   .query(PeerId::generate(), std::chrono::milliseconds(200))
                   .has_value());
}

TEST(PeerInfoTest, SelfQueryShortCircuits) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  const auto info =
      alice.info().query(alice.id(), std::chrono::milliseconds(100));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->name, "alice");
}

// --- MembershipService (PMP) ---------------------------------------------------------

TEST(MembershipTest, OpenGroupJoinsWithoutPassword) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  auto group = alice.create_group(make_group("open-group", alice));
  EXPECT_FALSE(group->membership().apply().password_required);
  const Credential c = group->membership().join("alice");
  EXPECT_TRUE(group->membership().joined());
  EXPECT_TRUE(group->membership().verify(c));
}

TEST(MembershipTest, PasswordGroupRejectsWrongPassword) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  auto group =
      alice.create_group(make_group("vip-group", alice, "s3cret"));
  EXPECT_TRUE(group->membership().apply().password_required);
  EXPECT_THROW(group->membership().join("alice", "wrong"), MembershipError);
  EXPECT_FALSE(group->membership().joined());
  const Credential c = group->membership().join("alice", "s3cret");
  EXPECT_TRUE(group->membership().joined());
  EXPECT_TRUE(group->membership().verify(c));
}

TEST(MembershipTest, CredentialVerifiableByOtherMember) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  const auto adv = make_group("shared-group", alice, "pw");
  auto g_alice = alice.create_group(adv);
  auto g_bob = bob.create_group(adv);
  const Credential alice_cred = g_alice->membership().join("alice", "pw");
  // Credentials travel as bytes; bob verifies against the same group adv.
  const Credential received =
      Credential::deserialize(alice_cred.serialize());
  EXPECT_TRUE(g_bob->membership().verify(received));
}

TEST(MembershipTest, TamperedCredentialRejected) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  auto group = alice.create_group(make_group("tamper-group", alice, "pw"));
  Credential c = group->membership().join("alice", "pw");
  c.identity = "mallory";  // token no longer matches
  EXPECT_FALSE(group->membership().verify(c));
  Credential c2 = group->membership().join("alice", "pw");
  c2.token ^= 1;
  EXPECT_FALSE(group->membership().verify(c2));
}

TEST(MembershipTest, ResignDropsCredential) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  auto group = alice.create_group(make_group("resign-group", alice));
  group->membership().join("alice");
  group->membership().resign();
  EXPECT_FALSE(group->membership().joined());
}

// --- PeerGroup -----------------------------------------------------------------------

TEST(PeerGroupTest, GroupsAreSingletonsPerGid) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  const auto adv = make_group("singleton-group", alice);
  auto g1 = alice.create_group(adv);
  auto g2 = alice.create_group(adv);
  EXPECT_EQ(g1.get(), g2.get());
}

TEST(PeerGroupTest, NewInstanceAfterRelease) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  const auto adv = make_group("reborn-group", alice);
  PeerGroup* first = alice.create_group(adv).get();  // dies immediately
  auto second = alice.create_group(adv);
  EXPECT_NE(second.get(), nullptr);
  (void)first;
}

TEST(PeerGroupTest, LookupServiceByJxtaName) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  auto group = alice.create_group(make_group("lookup-group", alice));
  EXPECT_EQ(group->lookup_service(WireService::kWireName),
            PeerGroup::ServiceKind::kWire);
  EXPECT_EQ(group->lookup_service(MembershipService::kServiceName),
            PeerGroup::ServiceKind::kMembership);
  EXPECT_THROW(group->lookup_service("jxta.service.unknown"),
               util::NotFoundError);
}

TEST(PeerGroupTest, NetGroupSharedByAllPeers) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  Peer& bob = net.add_peer("bob");
  EXPECT_EQ(alice.net_group().id(), bob.net_group().id());
  EXPECT_EQ(alice.net_group().name(), "NetPeerGroup");
  EXPECT_EQ(alice.net_group().parent(), nullptr);
}

TEST(PeerTest, StoppedPeerRejectsGroupCreation) {
  auto net = std::make_unique<TestNet>();
  Peer& alice = net->add_peer("alice");
  alice.stop();
  EXPECT_THROW((void)alice.create_group(make_group("late", alice)),
               util::StateError);
}

TEST(PeerTest, AddTransportAfterStartRejected) {
  TestNet net;
  Peer& alice = net.add_peer("alice");
  EXPECT_THROW(
      alice.add_transport(
          std::make_shared<net::InProcTransport>(net.fabric(), "late")),
      util::StateError);
}

TEST(PeerTest, MakeAdvertisementReflectsConfig) {
  TestNet net;
  Peer& rdv = net.add_peer("rdv", /*rendezvous=*/true, /*router=*/true);
  const auto adv = rdv.make_advertisement();
  EXPECT_EQ(adv.pid, rdv.id());
  EXPECT_EQ(adv.name, "rdv");
  EXPECT_TRUE(adv.is_rendezvous);
  EXPECT_TRUE(adv.is_router);
  ASSERT_EQ(adv.endpoints.size(), 1u);
  EXPECT_EQ(adv.endpoints[0].to_string(), "inproc://rdv");
}

}  // namespace
}  // namespace p2p::jxta
