// Edge-case tests for the TPS public API surface: null/degenerate inputs,
// history filtering across hierarchies, repeated lifecycle transitions,
// and malformed-traffic robustness.
#include <gtest/gtest.h>

#include <atomic>

#include "events/news.h"
#include "events/ski_rental.h"
#include "support/test_net.h"
#include "tps/tps.h"

namespace p2p::tps {
namespace {

using events::News;
using events::SkiRental;
using events::SportsNews;
using p2p::testing::TestNet;
using p2p::testing::wait_until;

TpsConfig fast_config() {
  TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(300);
  config.finder_period = std::chrono::milliseconds(150);
  return config;
}

TEST(TpsEdgeTest, PublishNullSharedPtrThrows) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  std::shared_ptr<const SkiRental> null_event;
  EXPECT_THROW(tps.publish(null_event), PsException);
}

TEST(TpsEdgeTest, EmptySubscribeArraysAreANoOp) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  const std::vector<std::shared_ptr<TpsCallback<SkiRental>>> callbacks;
  const std::vector<std::shared_ptr<TpsExceptionHandler<SkiRental>>>
      handlers;
  EXPECT_NO_THROW(tps.subscribe(callbacks, handlers));
}

TEST(TpsEdgeTest, DoubleUnsubscribeAllIsIdempotent) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  tps.unsubscribe();
  EXPECT_NO_THROW(tps.unsubscribe());
}

TEST(TpsEdgeTest, SameCallbackPairSubscribedTwiceFiresTwice) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  std::atomic<int> got{0};
  auto cb = make_callback<SkiRental>([&](const SkiRental&) { ++got; });
  auto eh = ignore_exceptions<SkiRental>();
  tps.subscribe(cb, eh);
  tps.subscribe(cb, eh);
  tps.publish(SkiRental("S", 1, "B", 1));
  EXPECT_TRUE(wait_until([&] { return got == 2; }));
  // One unsubscribe removes BOTH registrations of the identical pair (they
  // are indistinguishable by identity, which is the unit the paper's
  // method (4) specifies).
  tps.unsubscribe(cb, eh);
  EXPECT_THROW(tps.unsubscribe(cb, eh), PsException);
}

TEST(TpsEdgeTest, ObjectsReceivedFiltersToInterfaceType) {
  // A News-typed interface's history contains SportsNews items; a second
  // interface for SportsNews on the same peer must not see plain News in
  // its history.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  serial::register_event_with_ancestors<SportsNews>();
  TpsEngine<News> news_engine(alice, fast_config());
  auto news_if = news_engine.new_interface();
  std::atomic<int> got{0};
  news_if.subscribe(make_callback<News>([&](const News&) { ++got; }),
                    ignore_exceptions<News>());
  TpsEngine<News> pub_engine(bob, fast_config());
  auto pub = pub_engine.new_interface();
  pub.publish(News("plain", "x"));
  pub.publish(std::make_shared<const SportsNews>("sporty", "x", "golf"));
  ASSERT_TRUE(wait_until([&] { return got == 2; }));
  const auto received = news_if.objects_received();
  ASSERT_EQ(received.size(), 2u);
  int sports = 0;
  for (const auto& e : received) {
    if (std::dynamic_pointer_cast<const SportsNews>(e)) ++sports;
  }
  EXPECT_EQ(sports, 1);  // concrete types preserved in history
}

TEST(TpsEdgeTest, MalformedWireTrafficCountsAsDecodeFailure) {
  // Inject garbage directly onto the type's wire: the session must count a
  // decode failure and keep working.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  std::atomic<int> got{0};
  tps.subscribe(make_callback<SkiRental>([&](const SkiRental&) { ++got; }),
                ignore_exceptions<SkiRental>());

  // Find the type's advertisement and write junk to its wire.
  const auto advs = alice.discovery().get_local(jxta::DiscoveryType::kGroup,
                                                "Name", "PS_SkiRental");
  ASSERT_EQ(advs.size(), 1u);
  const auto* group_adv =
      dynamic_cast<const jxta::PeerGroupAdvertisement*>(advs[0].get());
  ASSERT_NE(group_adv, nullptr);
  auto group = alice.create_group(*group_adv);
  const auto pipe =
      *group_adv->service(jxta::WireService::kWireName)->pipe;
  auto out = group->wire().create_output_pipe(pipe);
  jxta::Message junk;
  junk.add_bytes("tps:event", {0xde, 0xad});
  junk.add_bytes("tps:event-id",
                 util::Bytes(16, 0x01));  // valid id, broken body
  out->send(junk);

  EXPECT_TRUE(
      wait_until([&] { return tps.stats().decode_failures == 1; }));
  // Still functional afterwards.
  tps.publish(SkiRental("S", 1, "B", 1));
  EXPECT_TRUE(wait_until([&] { return got == 1; }));
}

TEST(TpsEdgeTest, MissingEventIdElementIsRejected) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  const auto advs = alice.discovery().get_local(jxta::DiscoveryType::kGroup,
                                                "Name", "PS_SkiRental");
  const auto* group_adv =
      dynamic_cast<const jxta::PeerGroupAdvertisement*>(advs.at(0).get());
  auto group = alice.create_group(*group_adv);
  const auto pipe =
      *group_adv->service(jxta::WireService::kWireName)->pipe;
  auto out = group->wire().create_output_pipe(pipe);
  jxta::Message no_id;
  no_id.add_bytes("tps:event", {0x01});
  out->send(no_id);
  EXPECT_TRUE(
      wait_until([&] { return tps.stats().decode_failures == 1; }));
}

TEST(TpsEdgeTest, InterfaceCopiesShareOneSession) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps1 = engine.new_interface();
  auto tps2 = tps1;  // copy
  std::atomic<int> got{0};
  tps1.subscribe(make_callback<SkiRental>([&](const SkiRental&) { ++got; }),
                 ignore_exceptions<SkiRental>());
  tps2.publish(SkiRental("S", 1, "B", 1));  // publish through the copy
  EXPECT_TRUE(wait_until([&] { return got == 1; }));
  EXPECT_EQ(tps1.stats().published, tps2.stats().published);
}

TEST(TpsEdgeTest, SeparateInterfacesAreSeparateSessions) {
  // Two new_interface() calls give independent subscriber tables (each is
  // its own engine instance in the paper's sense).
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps1 = engine.new_interface();
  auto tps2 = engine.new_interface();
  std::atomic<int> got1{0};
  tps1.subscribe(
      make_callback<SkiRental>([&](const SkiRental&) { ++got1; }),
      ignore_exceptions<SkiRental>());
  tps2.publish(SkiRental("S", 1, "B", 1));
  // tps1 receives via the shared wire; its own subscription fires, tps2's
  // history counts the send.
  EXPECT_TRUE(wait_until([&] { return got1 == 1; }));
  EXPECT_EQ(tps2.objects_sent().size(), 1u);
  EXPECT_EQ(tps1.objects_sent().size(), 0u);
}

TEST(TpsEdgeTest, ZeroFieldEventRoundTrips) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  std::atomic<int> got{0};
  tps.subscribe(make_callback<SkiRental>([&](const SkiRental& e) {
                  if (e == SkiRental{}) ++got;
                }),
                ignore_exceptions<SkiRental>());
  tps.publish(SkiRental{});  // default-constructed event
  EXPECT_TRUE(wait_until([&] { return got == 1; }));
}

}  // namespace
}  // namespace p2p::tps
