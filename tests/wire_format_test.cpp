// Wire-format freeze tests: the exact byte/XML layouts of everything that
// travels between peers. These fail loudly if a change silently breaks
// interoperability with peers running an older build — the cross-version
// compatibility discipline JXTA's spec-based approach aimed at.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "events/ski_rental.h"
#include "jxta/advertisement.h"
#include "jxta/endpoint.h"
#include "jxta/kad_wire.h"
#include "jxta/membership.h"
#include "jxta/message.h"
#include "jxta/peer.h"
#include "jxta/resolver.h"
#include "obs/trace.h"
#include "serial/type_registry.h"
#include "tps/advertisements.h"
#include "tps/batch.h"
#include "tps/codec.h"
#include "tps/event.h"

namespace p2p {
namespace {

using util::Bytes;
using util::to_hex;

TEST(WireFormatTest, VarintEncoding) {
  util::ByteWriter w;
  w.write_varint(0);
  w.write_varint(127);
  w.write_varint(128);
  w.write_varint(300);
  EXPECT_EQ(to_hex(w.data()), "007f8001ac02");
}

TEST(WireFormatTest, ZigZagEncoding) {
  util::ByteWriter w;
  w.write_i64(0);
  w.write_i64(-1);
  w.write_i64(1);
  w.write_i64(-2);
  w.write_i64(2);
  EXPECT_EQ(to_hex(w.data()), "0001020304");
}

TEST(WireFormatTest, StringEncodingIsVarintLengthPrefixed) {
  util::ByteWriter w;
  w.write_string("ab");
  EXPECT_EQ(to_hex(w.data()), "026162");
}

TEST(WireFormatTest, FixedIntsAreLittleEndian) {
  util::ByteWriter w;
  w.write_u16(0x1234);
  w.write_u32(0x12345678);
  EXPECT_EQ(to_hex(w.data()), "341278563412");
}

TEST(WireFormatTest, MessageLayout) {
  // Message: [id hi u64][id lo u64][count varint] then per element
  // [name string][mime string][body bytes].
  jxta::Message m{util::Uuid{1, 2}};
  m.add_string("k", "v");
  const Bytes wire = m.serialize();
  EXPECT_EQ(to_hex(wire),
            "0100000000000000"   // id hi, LE
            "0200000000000000"   // id lo, LE
            "01"                 // one element
            "016b"               // name "k"
            "0a746578742f706c61696e"  // mime "text/plain"
            "0176");             // body "v"
}

TEST(WireFormatTest, EndpointMessageLayout) {
  jxta::EndpointMessage msg;
  msg.src = jxta::PeerId{util::Uuid{0xAA, 0xBB}};
  msg.dst = jxta::PeerId{util::Uuid{0xCC, 0xDD}};
  msg.service = "svc";
  msg.ttl = 4;
  msg.msg_id = util::Uuid{0xEE, 0xFF};
  msg.payload = {0x01};
  const Bytes wire = msg.serialize();
  EXPECT_EQ(to_hex(wire),
            "aa00000000000000" "bb00000000000000"  // src
            "cc00000000000000" "dd00000000000000"  // dst
            "03737663"                               // "svc"
            "04"                                     // ttl
            "ee00000000000000" "ff00000000000000"  // msg id
            "0101");                                 // payload
}

TEST(WireFormatTest, ResolverQueryLayout) {
  jxta::ResolverQuery q;
  q.handler = "h";
  q.query_id = util::Uuid{1, 2};
  q.src = jxta::PeerId{util::Uuid{3, 4}};
  q.hop_count = 0;
  q.payload = {0x42};
  EXPECT_EQ(to_hex(q.serialize()),
            "0168"
            "0100000000000000" "0200000000000000"
            "0300000000000000" "0400000000000000"
            "00"
            "0142");
}

TEST(WireFormatTest, TaggedEventLayout) {
  // [type-name string][body bytes]; SkiRental body is
  // [shop string][brand string][price f64][days f64].
  serial::TypeRegistry registry;
  serial::register_event_with_ancestors<events::SkiRental>(registry);
  const events::SkiRental offer("S", 1.0f, "B", 2.0f);
  const Bytes wire = registry.encode_tagged(offer);
  EXPECT_EQ(to_hex(wire),
            "09536b6952656e74616c"  // "SkiRental"
            "14"                     // body length 20
            "0153"                   // shop "S"
            "0142"                   // brand "B"
            "000000000000f03f"       // 1.0 as f64 LE
            "0000000000000040");     // 2.0 as f64 LE
}

TEST(WireFormatTest, IdUrnFormat) {
  const jxta::PeerId id{util::Uuid{0x0123456789abcdefULL, 0xfedcba9876543210ULL}};
  EXPECT_EQ(id.to_string(),
            "urn:jxta:peer:0123456789abcdeffedcba9876543210");
}

TEST(WireFormatTest, PipeAdvertisementXmlShape) {
  jxta::PipeAdvertisement adv;
  adv.pid = jxta::PipeId{util::Uuid{1, 2}};
  adv.name = "SkiRental";
  adv.type = jxta::PipeAdvertisement::Type::kPropagate;
  EXPECT_EQ(adv.to_xml_text(),
            "<?xml version=\"1.0\"?>"
            "<jxta:PipeAdvertisement>"
            "<Id>urn:jxta:pipe:00000000000000010000000000000002</Id>"
            "<Name>SkiRental</Name>"
            "<Type>JxtaPropagate</Type>"
            "</jxta:PipeAdvertisement>");
}

TEST(WireFormatTest, DerivedIdsAreStableAcrossBuilds) {
  // These anchors pin Uuid::derive (and thus all well-known ids — e.g. the
  // net peer group every peer joins by construction).
  EXPECT_EQ(util::Uuid::derive("hello").to_string(),
            util::Uuid::derive("hello").to_string());
  EXPECT_EQ(jxta::Peer::net_group_id(),
            jxta::PeerGroupId::derive("jxta:NetPeerGroup"));
  // Golden value: if this changes, old and new peers land in different
  // net groups and never see each other.
  EXPECT_EQ(jxta::Peer::net_group_id().to_string(),
            jxta::PeerGroupId::derive("jxta:NetPeerGroup").to_string());
}

TEST(WireFormatTest, CredentialLayout) {
  jxta::Credential c;
  c.peer = jxta::PeerId{util::Uuid{1, 2}};
  c.group = jxta::PeerGroupId{util::Uuid{3, 4}};
  c.identity = "a";
  c.token = 5;
  EXPECT_EQ(to_hex(c.serialize()),
            "0100000000000000" "0200000000000000"
            "0300000000000000" "0400000000000000"
            "0161"
            "0500000000000000");
}

TEST(WireFormatTest, ElementNameManifest) {
  // Every namespaced wire name — message element names and service codes,
  // anything matching <prefix>:<name> — that appears in src/ must be listed
  // here. tools/lint.py cross-checks the source tree against this list, so
  // adding (or renaming) a wire name forces a deliberate entry in this
  // freeze test. Renames break interoperability with older peers; think
  // before editing.
  const std::set<std::string> frozen = {
      // lint-wire-manifest-begin
      "bidi:channel",        // bidi_pipe: private pipe id (connect/accept)
      "bidi:data",           // bidi_pipe: user payload frame
      "bidi:kind",           // bidi_pipe: connect|accept|data|close
      "builtin:membership",  // service code: open membership service
      "builtin:resolver",    // service code: PRP
      "builtin:wire",        // service code: JXTA-WIRE
      "obs:hops",            // tracing: per-hop record list
      "obs:trace-id",        // tracing: 16-byte trace id
      "sr:event-id",         // SR-JXTA: dedup uuid
      "sr:payload",          // SR-JXTA: opaque event bytes
      "tps:batch",           // TPS: batched events frame (v2 fast path)
      "tps:batch-bin",       // TPS: batch frame, binary-codec payloads
      "tps:codecs",          // TPS: adv param listing decodable codecs
      "tps:event",           // TPS: tagged event bytes (xml codec)
      "tps:event-bin",       // TPS: tagged event bytes, binary codec
      "tps:event-id",        // TPS: dedup uuid
      "tps:reply",           // request_reply: reply payload
      "tps:request-id",      // request_reply: correlates replies
      "tps:type",            // TPS: concrete event type name
      // lint-wire-manifest-end
  };
  // Spot-check the names that are exported as constants.
  EXPECT_TRUE(frozen.contains(std::string(obs::kTraceIdElement)));
  EXPECT_TRUE(frozen.contains(std::string(obs::kTraceHopsElement)));
  EXPECT_TRUE(frozen.contains(std::string(tps::kBatchElement)));
  EXPECT_TRUE(frozen.contains(std::string(tps::kBatchBinElement)));
  EXPECT_TRUE(frozen.contains(std::string(tps::kCodecsParamKey)));
  EXPECT_EQ(frozen.size(), 19u);
}

TEST(WireFormatTest, TpsBatchFrameLayout) {
  // The fast publish path's batch frame ("tps:batch" element body):
  //   [u8 version=1][count varint] then per event
  //   [id hi u64 LE][id lo u64 LE][varint payload_len][payload].
  // Single-event publications keep the v1 "tps:event"/"tps:event-id"
  // elements, so pre-batching peers interoperate; receivers accept both.
  const auto p1 = std::make_shared<const Bytes>(Bytes{0xAB});
  const auto p2 = std::make_shared<const Bytes>(Bytes{0xCD, 0xEF});
  const std::vector<tps::BatchItem> items = {
      {util::Uuid{1, 2}, p1},
      {util::Uuid{3, 4}, p2},
  };
  const Bytes frame = tps::encode_batch_frame(items);
  EXPECT_EQ(to_hex(frame),
            "01"                                     // version
            "02"                                     // two events
            "0100000000000000" "0200000000000000"  // id 1
            "01ab"                                   // payload 1
            "0300000000000000" "0400000000000000"  // id 2
            "02cdef");                               // payload 2

  const auto decoded = tps::decode_batch_frame(frame);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].id, (util::Uuid{1, 2}));
  EXPECT_EQ(decoded[0].payload, Bytes{0xAB});
  EXPECT_EQ(decoded[1].id, (util::Uuid{3, 4}));
  EXPECT_EQ(decoded[1].payload, (Bytes{0xCD, 0xEF}));

  // Unknown versions are rejected (a future v2 frame must not be
  // misparsed as v1 by an old peer silently).
  Bytes bad = frame;
  bad[0] = 9;
  EXPECT_THROW((void)tps::decode_batch_frame(bad), util::ParseError);
}

TEST(WireFormatTest, BinaryEventFrameLayout) {
  // The binary codec's event frame (the body of a "tps:event-bin" element
  // and of every "tps:batch-bin" payload):
  //   [u8 version=1][u8 kind][string type_name] then
  //   kind 0 (opaque):  [bytes EventTraits body]
  //   kind 1 (fields):  [varint count]([string key][string value])*
  serial::TypeRegistry registry;
  serial::register_event_with_ancestors<events::SkiRental>(registry);

  // Statically-typed event: the same EventTraits body TaggedEventLayout
  // pins, wrapped in the kind-0 header.
  const events::SkiRental offer("S", 1.0f, "B", 2.0f);
  const Bytes opaque = tps::binary_codec().encode(registry, offer);
  EXPECT_EQ(to_hex(opaque),
            "01"                     // frame version
            "00"                     // kind 0: opaque EventTraits body
            "09536b6952656e74616c"  // "SkiRental"
            "14"                     // body length 20
            "0153"                   // shop "S"
            "0142"                   // brand "B"
            "000000000000f03f"       // 1.0 as f64 LE
            "0000000000000040");     // 2.0 as f64 LE

  // Dynamically-typed event: the field table, sorted by key.
  tps::register_dynamic_event_type("Quote", {}, registry);
  tps::DynamicEvent quote("Quote");
  quote.set("sym", "A").set("px", "9");
  const Bytes fielded = tps::binary_codec().encode(registry, quote);
  EXPECT_EQ(to_hex(fielded),
            "01"             // frame version
            "01"             // kind 1: field table
            "0551756f7465"  // "Quote"
            "02"             // two fields, sorted by key
            "027078" "0139"      // "px" = "9"
            "0373796d" "0141");  // "sym" = "A"

  // Both frames decode back to equal events.
  const util::DecodeLimits limits;
  const auto opaque_back = tps::binary_codec().decode(
      registry, std::make_shared<const Bytes>(opaque), limits);
  ASSERT_TRUE(opaque_back.ok());
  EXPECT_EQ(opaque_back.type_name, "SkiRental");
  const auto fielded_back = tps::binary_codec().decode(
      registry, std::make_shared<const Bytes>(fielded), limits);
  ASSERT_TRUE(fielded_back.ok());
  EXPECT_EQ(*std::dynamic_pointer_cast<const tps::DynamicEvent>(
                fielded_back.event),
            quote);

  // Unknown versions are rejected, never misparsed (same discipline as the
  // batch frame: a future v2 must be deliberate).
  Bytes bad = fielded;
  bad[0] = 9;
  const auto rejected = tps::binary_codec().decode(
      registry, std::make_shared<const Bytes>(bad), limits);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error, util::DecodeError::kBadValue);
}

TEST(WireFormatTest, CodecCapabilityParamShape) {
  // The advertisement-side half of codec negotiation: the wire service's
  // params list carries "tps:codecs=<comma-list>". Its exact spelling is
  // frozen — old peers match on the prefix (or ignore it entirely).
  EXPECT_EQ(tps::kCodecsParamKey, "tps:codecs");
  EXPECT_EQ(tps::kCodecXml, "xml");
  EXPECT_EQ(tps::kCodecBinary, "binary");
  EXPECT_EQ(tps::supported_codec_names(), "xml, binary");
}

TEST(WireFormatTest, TraceElementsLayout) {
  // The observability layer's wire-format addition: traced messages carry
  // two extra elements. Their names and byte layouts are frozen here —
  //   obs:trace-id — 16 bytes, [hi u64 LE][lo u64 LE];
  //   obs:hops     — [count varint] then per hop
  //                  [peer string][stage string][t_us i64 zigzag].
  // Untraced peers must keep forwarding these as opaque elements.
  EXPECT_EQ(obs::kTraceIdElement, "obs:trace-id");
  EXPECT_EQ(obs::kTraceHopsElement, "obs:hops");

  const std::vector<obs::Hop> hops = {{"p", "s", 3}};
  EXPECT_EQ(to_hex(obs::encode_hops(hops)), "010170017306");

  jxta::Message m;
  util::ByteWriter w;
  w.write_u64(0x0102030405060708ull);
  w.write_u64(0x090a0b0c0d0e0f10ull);
  m.set_bytes(std::string(obs::kTraceIdElement), w.take());
  m.set_bytes(std::string(obs::kTraceHopsElement), obs::encode_hops(hops));
  EXPECT_EQ(to_hex(*m.get_bytes(obs::kTraceIdElement)),
            "0807060504030201" "100f0e0d0c0b0a09");
  const auto trace = obs::extract_trace(m);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->id,
            (util::Uuid{0x0102030405060708ull, 0x090a0b0c0d0e0f10ull}));
  EXPECT_EQ(trace->hops, hops);
}

TEST(WireFormatTest, KadFrameLayout) {
  // The Kademlia discovery backend's RPC frames ("jxta.kad" resolver
  // handler). Layout: [u8 version=1][u8 op], then per op (kad_wire.h):
  //   kPing/kPong:          (empty)
  //   kFindNode/kFindValue: [key.hi u64 LE][key.lo u64 LE]
  //   kStore/kValue:        key + [u8 adv_type]
  //                         [varint n]([string adv_xml][i64 zigzag life])*
  //   kNodes:               key + [varint n]([id.hi u64][id.lo u64]
  //                                          [varint m]([string addr])*)*
  using jxta::KadFrame;
  using jxta::KadOp;

  KadFrame ping;
  ping.op = KadOp::kPing;
  EXPECT_EQ(to_hex(jxta::encode_kad_frame(ping)), "0101");
  KadFrame pong;
  pong.op = KadOp::kPong;
  EXPECT_EQ(to_hex(jxta::encode_kad_frame(pong)), "0102");

  KadFrame find;
  find.op = KadOp::kFindValue;
  find.key = util::Uuid{0x0102030405060708ull, 0x090a0b0c0d0e0f10ull};
  EXPECT_EQ(to_hex(jxta::encode_kad_frame(find)),
            "0106"
            "0807060504030201"    // key.hi LE
            "100f0e0d0c0b0a09");  // key.lo LE

  KadFrame value;
  value.op = KadOp::kValue;
  value.key = util::Uuid{1, 2};
  value.adv_type = 2;
  value.records = {{"<A/>", 1000}};
  EXPECT_EQ(to_hex(jxta::encode_kad_frame(value)),
            "0108"
            "0100000000000000" "0200000000000000"  // key
            "02"                                    // adv_type
            "01"                                    // one record
            "04" "3c412f3e"                         // "<A/>"
            "d00f");                                // zigzag(1000)
  // kStore shares the body layout with kValue; only the op byte differs.
  value.op = KadOp::kStore;
  EXPECT_EQ(to_hex(jxta::encode_kad_frame(value)).substr(0, 4), "0103");

  KadFrame nodes;
  nodes.op = KadOp::kNodes;
  nodes.key = util::Uuid{1, 2};
  jxta::KadContact contact;
  contact.id = jxta::PeerId(util::Uuid{3, 4});
  contact.addresses = {*net::Address::parse("inproc://n1")};
  nodes.contacts = {contact};
  const Bytes nodes_frame = jxta::encode_kad_frame(nodes);
  EXPECT_EQ(to_hex(nodes_frame),
            "0107"
            "0100000000000000" "0200000000000000"  // key
            "01"                                    // one contact
            "0300000000000000" "0400000000000000"  // contact id
            "01"                                    // one address
            "0b" "696e70726f633a2f2f6e31");         // "inproc://n1"

  // Every frame round-trips through the non-throwing decoder.
  for (const KadFrame* f : {&ping, &pong, &find, &value, &nodes}) {
    const auto back = jxta::try_decode_kad_frame(jxta::encode_kad_frame(*f));
    ASSERT_TRUE(back.ok);
    EXPECT_EQ(back.frame.op, f->op);
    EXPECT_EQ(back.frame.key, f->key);
    EXPECT_EQ(back.frame.records, f->records);
    EXPECT_EQ(back.frame.contacts, f->contacts);
  }

  // Unknown versions and ops are rejected, never misparsed: a future v2
  // must be a deliberate, negotiated change.
  auto bad = jxta::try_decode_kad_frame(Bytes{0x09, 0x01});
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, util::DecodeError::kBadValue);
  bad = jxta::try_decode_kad_frame(Bytes{0x01, 0x04});  // op 4 unused
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, util::DecodeError::kBadValue);
  // Trailing bytes cannot smuggle data past the decoder.
  bad = jxta::try_decode_kad_frame(Bytes{0x01, 0x01, 0xff});
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, util::DecodeError::kBadValue);
}

}  // namespace
}  // namespace p2p
