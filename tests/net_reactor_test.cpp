// The reactor I/O core: EventLoop/EventLoopGroup semantics and the
// reactor-specific behaviour of TcpTransport — non-blocking sends with a
// bounded time to return, write-queue backpressure accounting, reconnect
// after a peer restart, and half-open/idle connection eviction.

#include "net/event_loop.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>

#include "net/tcp_transport.h"
#include "obs/metrics.h"
#include "support/test_net.h"
#include "util/bytes.h"

namespace p2p::net {
namespace {

using testing::wait_until;
using util::to_bytes;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

// --- EventLoop ------------------------------------------------------------------

TEST(EventLoopTest, PostRunsTaskOnLoopThread) {
  EventLoop loop("test-loop");
  std::atomic<bool> on_loop{false};
  std::atomic<bool> ran{false};
  ASSERT_TRUE(loop.post([&] {
    on_loop = loop.in_loop_thread();
    ran = true;
  }));
  ASSERT_TRUE(wait_until([&] { return ran.load(); }));
  EXPECT_TRUE(on_loop.load());
  EXPECT_FALSE(loop.in_loop_thread());
}

TEST(EventLoopTest, RunInLoopIsInlineOnLoopThread) {
  EventLoop loop("test-loop");
  std::atomic<bool> inline_ran{false};
  std::atomic<bool> done{false};
  loop.run_in_loop([&] {
    // Already on the loop: the nested task must run before this returns.
    loop.run_in_loop([&] { inline_ran = true; });
    done = inline_ran.load();
  });
  ASSERT_TRUE(wait_until([&] { return done.load(); }));
  EXPECT_TRUE(inline_ran.load());
}

TEST(EventLoopTest, PostAfterStopIsDropped) {
  EventLoop loop("test-loop");
  loop.stop();
  EXPECT_FALSE(loop.post([] {}));
}

TEST(EventLoopTest, TimerFiresOnLoopThread) {
  EventLoop loop("test-loop");
  std::atomic<bool> on_loop{false};
  std::atomic<bool> fired{false};
  loop.schedule_after(milliseconds(5), [&] {
    on_loop = loop.in_loop_thread();
    fired = true;
  });
  ASSERT_TRUE(wait_until([&] { return fired.load(); }));
  EXPECT_TRUE(on_loop.load());
}

TEST(EventLoopTest, CancelledTimerDoesNotFire) {
  EventLoop loop("test-loop");
  std::atomic<bool> fired{false};
  const util::TimerId id =
      loop.schedule_after(milliseconds(50), [&] { fired = true; });
  EXPECT_TRUE(loop.cancel_timer(id));
  std::atomic<bool> sibling{false};
  loop.schedule_after(milliseconds(80), [&] { sibling = true; });
  ASSERT_TRUE(wait_until([&] { return sibling.load(); }));
  EXPECT_FALSE(fired.load());
}

TEST(EventLoopGroupTest, RoundRobinCoversEveryLoop) {
  EventLoopGroup group(3);
  ASSERT_EQ(group.size(), 3u);
  // next() must hand out all three loops before repeating.
  EventLoop* first = &group.next();
  EventLoop* second = &group.next();
  EventLoop* third = &group.next();
  EXPECT_NE(first, second);
  EXPECT_NE(second, third);
  EXPECT_NE(first, third);
  EXPECT_EQ(&group.next(), first);
}

// --- TcpTransport on the reactor -----------------------------------------------

// Every reactor-behaviour test keeps timeouts short so the suite stays fast.
TcpTransport::Options fast_options() {
  TcpTransport::Options o;
  o.connect_probe = milliseconds(20);
  o.connect_deadline = milliseconds(300);
  o.backoff_initial = milliseconds(50);
  o.backoff_max = milliseconds(200);
  return o;
}

TEST(TcpReactorTest, SendToDeadLocalPortFailsFastAndWithinBound) {
  // The PR-5 satellite regression: a caller publishing toward a dead
  // address must get its thread back within a bound, not ride a blocking
  // connect. Loopback refusal (RST) lands inside the inline probe, so the
  // send also reports false synchronously.
  TcpTransport t(0, fast_options());
  const auto start = steady_clock::now();
  const bool sent = t.send(Address("tcp", "127.0.0.1:1"), to_bytes("x"));
  const auto elapsed = steady_clock::now() - start;
  EXPECT_FALSE(sent);
  EXPECT_LT(elapsed, milliseconds(500));
  t.close();
}

TEST(TcpReactorTest, SendToSilentPeerReturnsWithinProbeBound) {
  // A silent peer: a listener whose accept backlog is full drops incoming
  // SYNs (Linux), so a connect to it hangs half-open with no RST ever
  // coming back — the exact shape that used to stall the old transport's
  // caller inside a blocking ::connect. The reactor contract: the caller
  // pays at most the inline probe, the enqueued datagram rides the loop's
  // retries, and the connect deadline eventually declares the authority
  // unreachable.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len), 0);
  // Fill the backlog with throwaway connections (kept open, never
  // accepted) until a fresh connect no longer completes.
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    ASSERT_GE(fd, 0);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    pollfd pfd{fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, 100);
    fillers.push_back(fd);
    if (pr == 0) break;  // this one hangs: the queue is now full
  }

  auto options = fast_options();
  const auto registry = std::make_shared<obs::Registry>();
  TcpTransport t(0, options);
  t.bind_metrics(registry);
  const std::string authority =
      "127.0.0.1:" + std::to_string(ntohs(addr.sin_port));
  const auto start = steady_clock::now();
  const bool sent = t.send(Address("tcp", authority), to_bytes("x"));
  const auto elapsed = steady_clock::now() - start;
  EXPECT_TRUE(sent);  // enqueued for the loop, not refused
  EXPECT_LT(elapsed, milliseconds(250));  // probe is 20ms; generous margin
  // The loop keeps the connect alive until the deadline (300ms), then
  // gives up and records the failure.
  if (obs::enabled()) {
    EXPECT_TRUE(wait_until([&] {
      return registry->counter("net.connects_failed").value() >= 1;
    }));
  }
  t.close();
  for (const int fd : fillers) ::close(fd);
  ::close(listener);
}

TEST(TcpReactorTest, WriteQueueBackpressureDropsAndCounts) {
  if (!obs::enabled()) GTEST_SKIP() << "drops are only observable as counters";
  // A receiver that accepts but never reads: once its kernel buffers and
  // the sender's (shrunken) SNDBUF fill, the per-connection queue grows to
  // its bound and further datagrams are dropped — counted, never blocking.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const int small = 4096;
  ::setsockopt(listener, SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len), 0);
  const std::string authority =
      "127.0.0.1:" + std::to_string(ntohs(addr.sin_port));

  auto options = fast_options();
  options.sndbuf_bytes = 4096;
  options.max_send_queue_bytes = 64 * 1024;
  const auto registry = std::make_shared<obs::Registry>();
  TcpTransport t(0, options);
  t.bind_metrics(registry);

  const util::Bytes payload(8 * 1024, 0xAB);
  const Address dst("tcp", authority);
  for (int i = 0; i < 300; ++i) {
    // Overflow drops the datagram and counts it; send still returns true
    // (best-effort, like every other layer here) and never blocks.
    t.send(dst, payload);
  }
  EXPECT_GE(registry->counter("net.send_drops").value(), 1u);
  // The queue gauge respects the bound (one in-flight frame of slack).
  EXPECT_LE(registry->gauge("net.send_queue_bytes").value(),
            static_cast<std::int64_t>(options.max_send_queue_bytes +
                                      payload.size() + 64));
  EXPECT_GT(registry->gauge("net.send_queue_bytes_hwm").value(), 0);
  t.close();
  ::close(listener);
}

TEST(TcpReactorTest, ReconnectAfterPeerRestart) {
  auto options = fast_options();
  TcpTransport a(0, options);
  std::atomic<int> received{0};

  auto b1 = std::make_unique<TcpTransport>(0, fast_options());
  b1->set_receiver([&](Datagram) { ++received; });
  const Address b_addr = b1->local_address();
  const std::uint16_t b_port = static_cast<std::uint16_t>(
      std::stoi(b_addr.authority().substr(b_addr.authority().find(':') + 1)));

  ASSERT_TRUE(a.send(b_addr, to_bytes("first")));
  ASSERT_TRUE(wait_until([&] { return received.load() == 1; }));

  // Restart the peer on the same port.
  b1->close();
  b1.reset();
  TcpTransport b2(b_port, fast_options());
  b2.set_receiver([&](Datagram) { ++received; });

  // A's cached connection died with b1; sends may fail until the loop has
  // reaped it and the backoff window (if any) expires, then a fresh
  // connect must go through.
  EXPECT_TRUE(wait_until([&] {
    a.send(b_addr, to_bytes("second"));
    return received.load() >= 2;
  }));
  a.close();
  b2.close();
}

TEST(TcpReactorTest, HalfOpenInboundConnectionIsEvicted) {
  if (!obs::enabled()) GTEST_SKIP() << "eviction is observed via a gauge";
  // A socket that connects but never sends a frame must not pin resources
  // forever: the idle sweep reaps it.
  auto options = fast_options();
  options.idle_timeout = milliseconds(100);
  const auto registry = std::make_shared<obs::Registry>();
  TcpTransport t(0, options);
  t.bind_metrics(registry);
  const std::string authority = t.local_address().authority();
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::stoi(authority.substr(authority.find(':') + 1)));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const auto active = [&] {
    return registry->gauge("net.connections_active").value();
  };
  ASSERT_TRUE(wait_until([&] { return active() == 1; }));
  // Never send anything; the sweep (idle_timeout / 4 cadence) evicts it.
  EXPECT_TRUE(wait_until([&] { return active() == 0; }));
  ::close(fd);
  t.close();
}

TEST(TcpReactorTest, IdleEstablishedConnectionIsEvictedAndReusable) {
  auto options = fast_options();
  options.idle_timeout = milliseconds(100);
  const auto registry = std::make_shared<obs::Registry>();
  TcpTransport a(0, options);
  a.bind_metrics(registry);
  TcpTransport b(0, fast_options());
  std::atomic<int> received{0};
  b.set_receiver([&](Datagram) { ++received; });

  ASSERT_TRUE(a.send(b.local_address(), to_bytes("one")));
  ASSERT_TRUE(wait_until([&] { return received.load() == 1; }));
  // Both ends go quiet; a's sweep closes the outbound connection.
  EXPECT_TRUE(wait_until([&] {
    return registry->gauge("net.connections_active").value() == 0;
  }));
  // The authority is not poisoned: the next send reconnects.
  EXPECT_TRUE(wait_until([&] {
    a.send(b.local_address(), to_bytes("two"));
    return received.load() >= 2;
  }));
  a.close();
  b.close();
}

TEST(TcpReactorTest, SharedLoopGroupServesManyTransports) {
  // One loop thread carries several transports end to end — the
  // O(io_threads) claim of the refactor in miniature.
  const auto loops = std::make_shared<EventLoopGroup>(1);
  const auto registry = std::make_shared<obs::Registry>();
  loops->bind_metrics(registry);

  TcpTransport::Options options = fast_options();
  options.loops = loops;
  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::atomic<int> received{0};
  for (int i = 0; i < 4; ++i) {
    transports.push_back(std::make_unique<TcpTransport>(0, options));
    transports.back()->set_receiver([&](Datagram) { ++received; });
  }
  for (int i = 0; i < 4; ++i) {
    const auto& from = transports[i];
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      EXPECT_TRUE(from->send(transports[j]->local_address(),
                             to_bytes("hello")));
    }
  }
  EXPECT_TRUE(wait_until([&] { return received.load() == 4 * 3; }));
  if (obs::enabled()) {
    EXPECT_GT(registry->counter("net.loop_wakeups").value(), 0u);
  }
  for (auto& t : transports) t->close();
  loops->stop();
}

}  // namespace
}  // namespace p2p::net
