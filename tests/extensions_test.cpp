// Tests for the paper's §6 future-work extensions: request/reply
// (TPS + RPC combination) and XML-typed (loosely-coupled) events.
#include <gtest/gtest.h>

#include <atomic>

#include "events/ski_rental.h"
#include "support/test_net.h"
#include "support/timing.h"
#include "tps/dynamic.h"
#include "tps/request_reply.h"

namespace p2p::tps {
namespace {

using events::SkiRental;
using p2p::testing::TestNet;
using p2p::testing::wait_until;

TpsConfig fast_config() {
  TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(300);
  config.finder_period = std::chrono::milliseconds(150);
  return config;
}

// For the party that initializes SECOND: a generous search window so it
// reliably adopts the first party's advertisement even on a loaded CI
// machine (found-early returns early, so the patience is free in the
// common case).
TpsConfig patient_config() {
  TpsConfig config = fast_config();
  config.adv_search_timeout = std::chrono::milliseconds(3000);
  return config;
}

// A tiny request type local to this test.
class Ping : public serial::Event {
 public:
  Ping() = default;
  explicit Ping(std::int64_t value) : value_(value) {}
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Pong : public serial::Event {
 public:
  Pong() = default;
  explicit Pong(std::int64_t value) : value_(value) {}
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

}  // namespace
}  // namespace p2p::tps

template <>
struct p2p::serial::EventTraits<p2p::tps::Ping> {
  static constexpr std::string_view kTypeName = "test:Ping";
  using Parent = NoParent;
  static void encode(const tps::Ping& e, util::ByteWriter& w) {
    w.write_i64(e.value());
  }
  static tps::Ping decode(util::ByteReader& r) {
    return tps::Ping{r.read_i64()};
  }
};

template <>
struct p2p::serial::EventTraits<p2p::tps::Pong> {
  static constexpr std::string_view kTypeName = "test:Pong";
  using Parent = NoParent;
  static void encode(const tps::Pong& e, util::ByteWriter& w) {
    w.write_i64(e.value());
  }
  static tps::Pong decode(util::ByteReader& r) {
    return tps::Pong{r.read_i64()};
  }
};

namespace p2p::tps {
namespace {

// --- request/reply ------------------------------------------------------------

TEST(RequestReplyTest, EnvelopeTypeNameDerivedFromInner) {
  EXPECT_EQ(serial::EventTraits<RequestEnvelope<Ping>>::kTypeName,
            "Request:test:Ping");
}

TEST(RequestReplyTest, EnvelopeCodecRoundTrips) {
  serial::TypeRegistry registry;
  serial::register_event_with_ancestors<RequestEnvelope<Ping>>(registry);
  const RequestEnvelope<Ping> original(Ping{42}, jxta::PipeId::generate(),
                                       util::Uuid::generate());
  const auto decoded =
      registry.decode_tagged(registry.encode_tagged(original));
  const auto* typed =
      dynamic_cast<const RequestEnvelope<Ping>*>(decoded.event.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->inner().value(), 42);
  EXPECT_EQ(typed->reply_pipe(), original.reply_pipe());
  EXPECT_EQ(typed->request_id(), original.request_id());
}

TEST(RequestReplyTest, SingleResponderAnswers) {
  TestNet net;
  jxta::Peer& customer = net.add_peer("customer");
  jxta::Peer& shop = net.add_peer("shop");
  Requester<Ping, Pong> requester(customer, fast_config());
  Responder<Ping, Pong> responder(
      shop,
      [](const Ping& p) -> std::optional<Pong> { return Pong{p.value() * 2}; },
      patient_config());
  std::atomic<std::int64_t> answer{0};
  requester.request(Ping{21}, [&](const Pong& pong) { answer = pong.value(); });
  EXPECT_TRUE(wait_until([&] { return answer == 42; }));
  EXPECT_EQ(responder.answered(), 1u);
}

TEST(RequestReplyTest, MultipleAnonymousResponders) {
  TestNet net;
  jxta::Peer& customer = net.add_peer("customer");
  jxta::Peer& shop1 = net.add_peer("shop1");
  jxta::Peer& shop2 = net.add_peer("shop2");
  Requester<Ping, Pong> requester(customer, fast_config());
  const auto echo = [](const Ping& p) -> std::optional<Pong> {
    return Pong{p.value()};
  };
  Responder<Ping, Pong> r1(shop1, echo, patient_config());
  Responder<Ping, Pong> r2(shop2, echo, patient_config());
  std::atomic<int> replies{0};
  requester.request(Ping{7}, [&](const Pong&) { ++replies; });
  EXPECT_TRUE(wait_until([&] { return replies == 2; }));
}

TEST(RequestReplyTest, DecliningResponderStaysSilent) {
  TestNet net;
  jxta::Peer& customer = net.add_peer("customer");
  jxta::Peer& shop = net.add_peer("shop");
  Requester<Ping, Pong> requester(customer, fast_config());
  Responder<Ping, Pong> responder(
      shop,
      [](const Ping& p) -> std::optional<Pong> {
        if (p.value() < 0) return std::nullopt;  // decline
        return Pong{1};
      },
      patient_config());
  std::atomic<int> replies{0};
  requester.request(Ping{-1}, [&](const Pong&) { ++replies; });
  p2p::testing::settle(std::chrono::milliseconds(500));
  EXPECT_EQ(replies, 0);
  EXPECT_EQ(responder.answered(), 0u);
  EXPECT_EQ(requester.pending_count(), 1u);
  // A positive request still works afterwards.
  requester.request(Ping{1}, [&](const Pong&) { ++replies; });
  EXPECT_TRUE(wait_until([&] { return replies == 1; }));
}

TEST(RequestReplyTest, ForgottenRequestDropsLateReplies) {
  TestNet net;
  jxta::Peer& customer = net.add_peer("customer");
  jxta::Peer& shop = net.add_peer("shop");
  Requester<Ping, Pong> requester(customer, fast_config());
  std::atomic<int> replies{0};
  Responder<Ping, Pong> responder(
      shop,
      [](const Ping& p) -> std::optional<Pong> { return Pong{p.value()}; },
      patient_config());
  // Slow the reply leg down so forget() deterministically wins the race.
  net.fabric().set_link("shop", "customer", {.latency_ms = 300});
  const util::Uuid id =
      requester.request(Ping{5}, [&](const Pong&) { ++replies; });
  requester.forget(id);  // cancel before the answer can arrive
  p2p::testing::settle(std::chrono::milliseconds(600));
  EXPECT_EQ(replies, 0);
  EXPECT_EQ(requester.pending_count(), 0u);
}

TEST(RequestReplyTest, ThrowingHandlerAnswersNothing) {
  TestNet net;
  jxta::Peer& customer = net.add_peer("customer");
  jxta::Peer& shop = net.add_peer("shop");
  Requester<Ping, Pong> requester(customer, fast_config());
  Responder<Ping, Pong> responder(
      shop,
      [](const Ping&) -> std::optional<Pong> {
        throw std::runtime_error("shop database down");
      },
      patient_config());
  std::atomic<int> replies{0};
  requester.request(Ping{1}, [&](const Pong&) { ++replies; });
  p2p::testing::settle(std::chrono::milliseconds(500));
  EXPECT_EQ(replies, 0);
}

// --- XML-typed events ------------------------------------------------------------

TEST(XmlEventTest, FieldsAndXmlRoundTrip) {
  DynamicEvent event("WeatherReport");
  event.set("resort", "Zermatt").set("snow_cm", "45");
  EXPECT_EQ(event.get("resort"), "Zermatt");
  EXPECT_TRUE(event.has("snow_cm"));
  EXPECT_FALSE(event.has("wind"));
  EXPECT_EQ(event.get("wind"), "");
  const DynamicEvent back = DynamicEvent::from_xml(
      xml::parse(xml::write(event.to_xml())));
  EXPECT_EQ(back, event);
  EXPECT_EQ(back.tps_type_name(), "WeatherReport");
}

TEST(XmlEventTest, DynamicRegistrationAndTaggedCodec) {
  serial::TypeRegistry registry;
  register_dynamic_event_type("X:Alert", "", registry);
  register_dynamic_event_type("X:Weather", "X:Alert", registry);
  EXPECT_EQ(registry.ancestry("X:Weather"),
            (std::vector<std::string>{"X:Weather", "X:Alert"}));
  DynamicEvent event("X:Weather");
  event.set("k", "v");
  const auto decoded = registry.decode_tagged(registry.encode_tagged(event));
  EXPECT_EQ(decoded.type_name, "X:Weather");
  const auto* typed = dynamic_cast<const DynamicEvent*>(decoded.event.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->get("k"), "v");
}

TEST(XmlEventTest, UnregisteredDynamicTypeFailsToEncode) {
  serial::TypeRegistry registry;
  DynamicEvent event("NeverRegistered");
  EXPECT_THROW((void)registry.encode_tagged(event), util::NotFoundError);
}

TEST(DynamicTpsTest, LooselyCoupledPubSub) {
  TestNet net;
  jxta::Peer& a = net.add_peer("a");
  jxta::Peer& b = net.add_peer("b");
  DynamicTpsInterface sub(a, "dyn:Quote", "", fast_config());
  std::atomic<int> got{0};
  std::mutex mu;
  std::string last_price;
  sub.subscribe(
      [&](const DynamicEvent& e) {
        const std::lock_guard lock(mu);
        last_price = e.get("price");
        ++got;
      },
      [](std::exception_ptr) {});
  DynamicTpsInterface pub(b, "dyn:Quote", "", patient_config());
  DynamicEvent quote("dyn:Quote");
  quote.set("price", "14.5");
  pub.publish(quote);
  EXPECT_TRUE(wait_until([&] { return got == 1; }));
  const std::lock_guard lock(mu);
  EXPECT_EQ(last_price, "14.5");
}

TEST(DynamicTpsTest, RuntimeHierarchyDispatch) {
  TestNet net;
  jxta::Peer& root_peer = net.add_peer("root-sub");
  jxta::Peer& leaf_peer = net.add_peer("leaf-pub");
  DynamicTpsInterface root_sub(root_peer, "dyn:Base", "", fast_config());
  std::atomic<int> got{0};
  root_sub.subscribe([&](const DynamicEvent&) { ++got; },
                     [](std::exception_ptr) {});
  DynamicTpsInterface leaf_pub(leaf_peer, "dyn:Derived", "dyn:Base",
                               fast_config());
  DynamicEvent event("dyn:Derived");
  leaf_pub.publish(event);
  EXPECT_TRUE(wait_until([&] { return got == 1; }));
}

TEST(DynamicTpsTest, PublishingWrongTypeNameThrows) {
  TestNet net;
  jxta::Peer& a = net.add_peer("a");
  DynamicTpsInterface tps(a, "dyn:Strict", "", fast_config());
  register_dynamic_event_type("dyn:Unrelated");
  DynamicEvent wrong("dyn:Unrelated");
  EXPECT_THROW(tps.publish(wrong), PsException);
}

TEST(DynamicTpsTest, UnsubscribeToken) {
  TestNet net;
  jxta::Peer& a = net.add_peer("a");
  DynamicTpsInterface tps(a, "dyn:Tokens", "", fast_config());
  std::atomic<int> got{0};
  const auto token = tps.subscribe([&](const DynamicEvent&) { ++got; },
                                   [](std::exception_ptr) {});
  tps.unsubscribe(token);
  DynamicEvent e("dyn:Tokens");
  tps.publish(e);
  p2p::testing::settle(std::chrono::milliseconds(300));
  EXPECT_EQ(got, 0);
}

}  // namespace
}  // namespace p2p::tps
