// Tests for the observability subsystem (src/obs/): the metrics registry
// (handles, concurrency, snapshots, exposition), the trace-hop codec and
// Tracer, and the end-to-end acceptance path — one TPS publish leaves a
// multi-hop trace on the subscriber and registry-sourced traffic counters
// visible group-wide through PIP/MonitoringService.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "events/ski_rental.h"
#include "jxta/message.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "support/test_net.h"
#include "tps/tps.h"

namespace p2p::obs {
namespace {

using events::SkiRental;
using p2p::testing::TestNet;
using p2p::testing::wait_until;

// --- metrics registry --------------------------------------------------------

TEST(MetricsTest, CounterGaugeBasics) {
  Registry reg;
  const Counter c = reg.counter("a.count");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same cell.
  EXPECT_EQ(reg.counter("a.count").value(), 42u);

  const Gauge g = reg.gauge("a.level");
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
}

TEST(MetricsTest, UnboundHandlesAreSafeNoOps) {
  // Default-constructed handles hit process-wide scratch cells — they must
  // never crash, whatever the call.
  const Counter c;
  const Gauge g;
  const Histogram h;
  c.inc();
  g.set(1);
  g.add(2);
  h.record(3.0);
}

TEST(MetricsTest, ConcurrentCounterIncrementsSumExactly) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      const Counter c = reg.counter("contended");
      for (int i = 0; i < kIncsPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("contended").value(),
            static_cast<std::uint64_t>(kThreads) * kIncsPerThread);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  Registry reg;
  const Histogram h = reg.histogram("lat", {10.0, 100.0});
  h.record(5);    // <= 10
  h.record(10);   // boundary value lands in its own bucket (le semantics)
  h.record(11);   // <= 100
  h.record(100);  // <= 100
  h.record(101);  // +inf
  const Snapshot snap = reg.snapshot();
  const MetricValue* v = snap.find("lat");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->kind, MetricValue::Kind::kHistogram);
  ASSERT_EQ(v->histogram.counts.size(), 3u);
  EXPECT_EQ(v->histogram.counts[0], 2u);
  EXPECT_EQ(v->histogram.counts[1], 2u);
  EXPECT_EQ(v->histogram.counts[2], 1u);
  EXPECT_EQ(v->histogram.count, 5u);
  EXPECT_DOUBLE_EQ(v->histogram.sum, 5 + 10 + 11 + 100 + 101);
}

TEST(MetricsTest, SnapshotDiffSemantics) {
  Registry reg;
  const Counter c = reg.counter("msgs");
  const Gauge g = reg.gauge("depth");
  const Histogram h = reg.histogram("lat", {10.0});
  c.inc(3);
  g.set(5);
  h.record(1);
  const Snapshot before = reg.snapshot();

  c.inc(4);
  g.set(9);
  h.record(1);
  h.record(50);
  const Counter fresh = reg.counter("fresh");
  fresh.inc(2);
  const Snapshot after = reg.snapshot();

  const Snapshot d = diff(before, after);
  // Counters subtract.
  EXPECT_EQ(d.counter("msgs"), 4u);
  // Metrics absent from `before` pass through whole.
  EXPECT_EQ(d.counter("fresh"), 2u);
  // Gauges keep the `after` value (a level, not a rate).
  ASSERT_NE(d.find("depth"), nullptr);
  EXPECT_EQ(d.find("depth")->gauge, 9);
  // Histogram buckets subtract.
  const MetricValue* lat = d.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->histogram.counts[0], 1u);
  EXPECT_EQ(lat->histogram.counts[1], 1u);
  EXPECT_EQ(lat->histogram.count, 2u);
}

TEST(MetricsTest, JsonAndPrometheusExposition) {
  Registry reg;
  reg.counter("net.msgs_sent").inc(3);
  reg.gauge("rdv.clients").set(2);
  reg.histogram("tps.publish_latency_us", {100.0}).record(42);
  const Snapshot snap = reg.snapshot();

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"net.msgs_sent\":{\"type\":\"counter\",\"value\":3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"rdv.clients\":{\"type\":\"gauge\",\"value\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"tps.publish_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+inf\""), std::string::npos);

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("net_msgs_sent 3"), std::string::npos);
  EXPECT_NE(prom.find("rdv_clients 2"), std::string::npos);
  // Cumulative buckets with the +Inf bucket equal to _count.
  EXPECT_NE(prom.find("tps_publish_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("tps_publish_latency_us_count 1"), std::string::npos);
}

// --- trace codec + Tracer ----------------------------------------------------

TEST(TraceTest, HopCodecRoundTrip) {
  const std::vector<Hop> hops = {
      {"urn:jxta:peer:aa", "publish", 1000},
      {"urn:jxta:peer:aa", "wire-send", 1010},
      {"urn:jxta:peer:bb", "wire-recv", 2500},
      {"urn:jxta:peer:bb", "deliver", 2600},
  };
  EXPECT_EQ(decode_hops(encode_hops(hops)), hops);
  EXPECT_TRUE(decode_hops(encode_hops({})).empty());
}

TEST(TraceTest, StartAppendExtractOnMessage) {
  jxta::Message msg;
  const util::Uuid id = start_trace(msg, "peerA", "publish", 100);
  EXPECT_FALSE(id.is_nil());
  EXPECT_TRUE(append_hop(msg, "peerA", "wire-send", 110));

  // The trace id survives dup() — unlike the message id, which dup()
  // refreshes — so the path stays stitchable across re-wrapping.
  jxta::Message copy = msg.dup();
  EXPECT_TRUE(append_hop(copy, "peerB", "wire-recv", 300));

  const auto trace = extract_trace(copy);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->id, id);
  ASSERT_EQ(trace->hops.size(), 3u);
  EXPECT_EQ(trace->hops[0].stage, "publish");
  EXPECT_EQ(trace->hops[1].stage, "wire-send");
  EXPECT_EQ(trace->hops[2].stage, "wire-recv");
  EXPECT_EQ(trace->hops[2].peer, "peerB");

  // Restarting a trace on an already-traced message keeps the id.
  EXPECT_EQ(start_trace(copy, "peerB", "re-publish", 400), id);
}

TEST(TraceTest, UntracedMessageYieldsNothing) {
  jxta::Message msg;
  msg.add_string("payload", "x");
  EXPECT_FALSE(append_hop(msg, "peerA", "wire-send", 1));
  EXPECT_FALSE(extract_trace(msg).has_value());
}

TEST(TraceTest, HopCountIsBounded) {
  jxta::Message msg;
  start_trace(msg, "p", "publish", 0);
  for (std::size_t i = 1; i < kMaxHops; ++i) {
    EXPECT_TRUE(append_hop(msg, "p", "hop", static_cast<std::int64_t>(i)));
  }
  // The list is full: a routing loop cannot grow the message further.
  EXPECT_FALSE(append_hop(msg, "p", "hop", 999));
  EXPECT_EQ(extract_trace(msg)->hops.size(), kMaxHops);
}

TEST(TraceTest, TracerKeepsNewestUpToCapacity) {
  Tracer tracer(2);
  const util::Uuid a = util::Uuid::derive("a");
  const util::Uuid b = util::Uuid::derive("b");
  const util::Uuid c = util::Uuid::derive("c");
  tracer.record(Trace{a, {}});
  tracer.record(Trace{b, {}});
  tracer.record(Trace{c, {}});
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(tracer.recent().size(), 2u);
  EXPECT_FALSE(tracer.find(a).has_value());  // evicted
  EXPECT_TRUE(tracer.find(b).has_value());
  EXPECT_TRUE(tracer.find(c).has_value());
}

TEST(TraceTest, TracerCountsEvictionsInRegistry) {
  Registry reg;
  Tracer tracer(3, reg.counter("obs.traces_dropped"));
  EXPECT_EQ(tracer.capacity(), 3u);
  for (int i = 0; i < 8; ++i) {
    tracer.record(Trace{util::Uuid::derive(std::to_string(i)), {}});
  }
  EXPECT_EQ(tracer.recorded(), 8u);
  EXPECT_EQ(tracer.recent().size(), 3u);
  EXPECT_EQ(tracer.dropped(), 5u);
  EXPECT_EQ(reg.snapshot().counter("obs.traces_dropped"), 5u);
}

// --- span-timeline exporter --------------------------------------------------

TEST(TimelineTest, EmitsCompleteSpansPerHopPair) {
  Trace trace;
  trace.id = util::Uuid::derive("t");
  trace.hops = {
      {"peerA", "publish", 1000},
      {"peerA", "wire-send", 1100},
      {"peerB", "deliver", 2500},
  };
  const std::string json = timeline_json({trace}, {});
  // Chrome-trace envelope.
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One "X" complete span per consecutive hop pair, named stage->stage.
  EXPECT_NE(json.find("\"publish->wire-send\""), std::string::npos);
  EXPECT_NE(json.find("\"wire-send->deliver\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Span start is the earlier hop's stamp; duration is the gap.
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1400"), std::string::npos);
  // Peers become named processes.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("peerA"), std::string::npos);
  EXPECT_NE(json.find("peerB"), std::string::npos);
}

TEST(TimelineTest, EmitsFlightRecordsAsInstants) {
  FlightRecord record;
  record.t_us = 42;
  record.thread = 7;
  record.component = FlightComponent::kDelivery;
  record.kind = FlightKind::kDequeue;
  record.arg = 99;
  const std::string json = timeline_json({}, {record});
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":42"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  EXPECT_NE(json.find("flight-recorder"), std::string::npos);
  EXPECT_NE(json.find(to_string(FlightKind::kDequeue)), std::string::npos);
}

// --- end-to-end acceptance ---------------------------------------------------

// One TPS publish crosses two peers; afterwards (a) the subscriber's Tracer
// holds the full path with per-hop timestamps, and (b) a third monitoring
// peer observes non-zero registry-sourced traffic counters from BOTH peers
// through the PIP sweep. Everything via public APIs.
TEST(ObsIntegrationTest, PublishLeavesTraceAndGroupWideCounters) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  jxta::Peer& monitor = net.add_peer("monitor");

  tps::TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(300);
  config.finder_period = std::chrono::milliseconds(150);
  tps::TpsEngine<SkiRental> engine_a(alice, config);
  auto sub = engine_a.new_interface();
  std::atomic<int> received{0};
  sub.subscribe(
      tps::make_callback<SkiRental>([&](const SkiRental&) { ++received; }),
      tps::ignore_exceptions<SkiRental>());
  tps::TpsEngine<SkiRental> engine_b(bob, config);
  auto pub = engine_b.new_interface();
  pub.publish(SkiRental("Shop", 14.0f, "Brand", 99.0f));
  ASSERT_TRUE(wait_until([&] { return received > 0; }));

  // (a) the delivered event left a complete multi-peer trace on alice.
  ASSERT_TRUE(wait_until([&] { return alice.tracer().recorded() > 0; }));
  const auto traces = alice.tracer().recent();
  ASSERT_FALSE(traces.empty());
  const Trace& trace = traces.back();
  ASSERT_GE(trace.hops.size(), 2u);
  EXPECT_EQ(trace.hops.front().stage, "publish");
  EXPECT_EQ(trace.hops.front().peer, bob.id().to_string());
  EXPECT_EQ(trace.hops.back().stage, "deliver");
  EXPECT_EQ(trace.hops.back().peer, alice.id().to_string());
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    EXPECT_GT(trace.hops[i].t_us, 0) << "hop " << i << " missing timestamp";
    if (i > 0) {
      EXPECT_GE(trace.hops[i].t_us, trace.hops[i - 1].t_us)
          << "hop " << i << " goes backwards in time";
    }
  }

  // (b) both peers' registries feed their PIP answers: a sweep from the
  // monitor sees non-zero message/byte counters for alice AND bob.
  const auto live_traffic = [&](const jxta::Peer& peer) {
    const auto status = monitor.monitoring().status_of(peer.id());
    return status.has_value() && status->info.traffic.msgs_sent > 0 &&
           status->info.traffic.bytes_sent > 0 &&
           status->info.traffic.msgs_received > 0 &&
           status->info.traffic.bytes_received > 0;
  };
  ASSERT_TRUE(wait_until([&] {
    monitor.monitoring().sweep();
    return live_traffic(alice) && live_traffic(bob);
  }));
  EXPECT_GE(monitor.monitoring().statuses().size(), 2u);

  // The counters the sweep reported really came from the registries.
  EXPECT_GT(bob.metrics().snapshot().counter("tps.published"), 0u);
  EXPECT_GT(alice.metrics().snapshot().counter("tps.received_unique"), 0u);
  EXPECT_GT(bob.metrics().snapshot().counter("net.msgs_sent"), 0u);
  EXPECT_GT(alice.metrics().snapshot().counter("net.msgs_received"), 0u);
}

// Trace hops must survive the v2 batch framing: events coalesced into one
// tps:batch frame still deliver a complete trace on the subscriber, with
// the extra "batch" stage marking the coalescing point.
TEST(ObsIntegrationTest, TraceSurvivesBatchFrameRoundTrip) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");

  tps::TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(300);
  config.finder_period = std::chrono::milliseconds(150);
  config.batching = true;
  config.batch_max_events = 8;
  // A long linger so a burst of publishes reliably coalesces into one frame.
  config.batch_max_age = std::chrono::milliseconds(50);
  tps::TpsEngine<SkiRental> engine_a(alice, config);
  auto sub = engine_a.new_interface();
  std::atomic<int> received{0};
  sub.subscribe(
      tps::make_callback<SkiRental>([&](const SkiRental&) { ++received; }),
      tps::ignore_exceptions<SkiRental>());
  tps::TpsEngine<SkiRental> engine_b(bob, config);
  auto pub = engine_b.new_interface();

  constexpr int kEvents = 8;
  for (int i = 0; i < kEvents; ++i) {
    pub.publish(SkiRental("Shop", static_cast<float>(i), "Brand", 99.0f));
  }
  ASSERT_TRUE(wait_until([&] { return received >= kEvents; }));
  // The burst really used the batch path.
  ASSERT_TRUE(wait_until([&] {
    return bob.metrics().snapshot().counter("tps.batches_sent") > 0;
  }));

  // At least one recorded trace carries the batch stage, and its hop chain
  // is intact end to end.
  ASSERT_TRUE(wait_until([&] { return alice.tracer().recorded() > 0; }));
  const auto has_stage = [](const Trace& trace, const std::string& stage) {
    for (const Hop& hop : trace.hops) {
      if (hop.stage == stage) return true;
    }
    return false;
  };
  std::optional<Trace> batched;
  ASSERT_TRUE(wait_until([&] {
    for (const Trace& trace : alice.tracer().recent()) {
      if (has_stage(trace, "batch")) {
        batched = trace;
        return true;
      }
    }
    return false;
  }));
  EXPECT_EQ(batched->hops.front().stage, "publish");
  EXPECT_EQ(batched->hops.front().peer, bob.id().to_string());
  EXPECT_TRUE(has_stage(*batched, "decode"));
  EXPECT_EQ(batched->hops.back().stage, "deliver");
  EXPECT_EQ(batched->hops.back().peer, alice.id().to_string());
  for (std::size_t i = 1; i < batched->hops.size(); ++i) {
    EXPECT_GE(batched->hops[i].t_us, batched->hops[i - 1].t_us);
  }
  // The batch stage sits publisher-side, after publish.
  ASSERT_GE(batched->hops.size(), 4u);
  EXPECT_EQ(batched->hops[1].stage, "batch");
  EXPECT_EQ(batched->hops[1].peer, bob.id().to_string());
}

}  // namespace
}  // namespace p2p::obs
