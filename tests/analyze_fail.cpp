// Deliberately violates a thread-safety annotation. This file is NOT part
// of any test binary: tests/CMakeLists.txt builds it as the standalone
// `analyze_fail_smoke` target and registers a ctest entry (WILL_FAIL) that
// expects the build to DIE under -DP2P_ANALYZE=ON. If the analyzer ever
// stops flagging this, the smoke test fails and tells us the -Wthread-safety
// wiring rotted.
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  int bump() {
    return ++value_;  // guarded member touched with mu_ not held
  }

 private:
  p2p::util::Mutex mu_{"analyze-fail-counter"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.bump() == 1 ? 0 : 1;
}
