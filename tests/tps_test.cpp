// Tests for the TPS layer: the paper's seven API methods, the three SR
// functionalities, hierarchy dispatch, criteria and failure handling.
#include <gtest/gtest.h>

#include <atomic>

#include "events/news.h"
#include "events/ski_rental.h"
#include "support/test_net.h"
#include "support/timing.h"
#include "tps/tps.h"

namespace p2p::tps {
namespace {

using events::News;
using events::SkiNews;
using events::SkiRental;
using events::SkiRentalWithLessons;
using events::SportsNews;
using p2p::testing::TestNet;
using p2p::testing::wait_until;

TpsConfig fast_config() {
  TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(300);
  config.finder_period = std::chrono::milliseconds(150);
  return config;
}

template <typename T>
struct Counter {
  std::shared_ptr<TpsCallback<T>> callback;
  std::shared_ptr<std::atomic<int>> count =
      std::make_shared<std::atomic<int>>(0);

  Counter() {
    auto count_copy = count;
    callback = make_callback<T>(
        [count_copy](const T&) { ++*count_copy; });
  }
};

// --- initialization (paper phase 2 + SR functionality (1)) -------------------

TEST(TpsInitTest, CreatesAdvertisementWhenNoneExists) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  EXPECT_EQ(tps.advertisement_count(), 1u);
  // The advertisement landed in discovery with the paper's PS_ name.
  EXPECT_FALSE(alice.discovery()
                   .get_local(jxta::DiscoveryType::kGroup, "Name",
                              "PS_SkiRental")
                   .empty());
}

TEST(TpsInitTest, AdoptsExistingAdvertisementInsteadOfCreating) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> engine_a(alice, fast_config());
  auto tps_a = engine_a.new_interface();
  // Bob starts later; must find alice's advertisement, not mint a second.
  // Generous window: found-early returns early, so this only costs time if
  // the test were about to fail anyway.
  TpsConfig patient = fast_config();
  patient.adv_search_timeout = std::chrono::milliseconds(3000);
  TpsEngine<SkiRental> engine_b(bob, patient);
  auto tps_b = engine_b.new_interface();
  EXPECT_EQ(tps_b.advertisement_count(), 1u);
  const auto advs_a = alice.discovery().get_local(
      jxta::DiscoveryType::kGroup, "Name", "PS_SkiRental");
  const auto advs_b = bob.discovery().get_local(
      jxta::DiscoveryType::kGroup, "Name", "PS_SkiRental");
  ASSERT_EQ(advs_b.size(), 1u);
  ASSERT_EQ(advs_a.size(), 1u);
  EXPECT_EQ(advs_a[0]->identity(), advs_b[0]->identity());
}

TEST(TpsInitTest, ConcurrentCreatorsConverge) {
  // Partitioned peers initialize independently: both create an
  // advertisement (the race the paper acknowledges). After the partition
  // heals, the finders keep running and both sessions must end up bound to
  // BOTH advertisements (SR functionality (2)).
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  net.fabric().partition("alice", "bob");
  TpsConfig config = fast_config();
  config.adv_search_timeout = std::chrono::milliseconds(1);
  TpsEngine<SkiRental> engine_a(alice, config);
  TpsEngine<SkiRental> engine_b(bob, config);
  auto tps_a = engine_a.new_interface();
  auto tps_b = engine_b.new_interface();
  EXPECT_EQ(tps_a.advertisement_count(), 1u);
  EXPECT_EQ(tps_b.advertisement_count(), 1u);
  net.fabric().heal("alice", "bob");
  EXPECT_TRUE(wait_until([&] {
    return tps_a.advertisement_count() == 2 &&
           tps_b.advertisement_count() == 2;
  }));
}

// --- publish/subscribe (paper methods (1)-(3)) -----------------------------------

TEST(TpsPubSubTest, EventsFlowToSubscriber) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> engine_a(alice, fast_config());
  auto sub = engine_a.new_interface();
  Counter<SkiRental> counter;
  sub.subscribe(counter.callback, ignore_exceptions<SkiRental>());
  TpsEngine<SkiRental> engine_b(bob, fast_config());
  auto pub = engine_b.new_interface();
  pub.publish(SkiRental("S", 10, "B", 1));
  pub.publish(SkiRental("S", 20, "B", 2));
  EXPECT_TRUE(wait_until([&] { return *counter.count == 2; }));
}

TEST(TpsPubSubTest, TypedContentSurvivesTransit) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> engine_a(alice, fast_config());
  auto sub = engine_a.new_interface();
  std::mutex mu;
  std::optional<SkiRental> got;
  sub.subscribe(make_callback<SkiRental>([&](const SkiRental& e) {
                  const std::lock_guard lock(mu);
                  got = e;
                }),
                ignore_exceptions<SkiRental>());
  TpsEngine<SkiRental> engine_b(bob, fast_config());
  auto pub = engine_b.new_interface();
  const SkiRental sent("XTremShop", 14.0f, "Salomon", 100.0f);
  pub.publish(sent);
  EXPECT_TRUE(wait_until([&] {
    const std::lock_guard lock(mu);
    return got.has_value();
  }));
  const std::lock_guard lock(mu);
  EXPECT_EQ(*got, sent);
}

TEST(TpsPubSubTest, MultipleCallbacksAllInvoked) {
  // Paper method (3): "register several call-back objects to handle the
  // events in different ways".
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> engine_a(alice, fast_config());
  auto sub = engine_a.new_interface();
  Counter<SkiRental> console;
  Counter<SkiRental> gui;
  sub.subscribe({console.callback, gui.callback},
                {ignore_exceptions<SkiRental>(),
                 ignore_exceptions<SkiRental>()});
  TpsEngine<SkiRental> engine_b(bob, fast_config());
  auto pub = engine_b.new_interface();
  pub.publish(SkiRental("S", 10, "B", 1));
  EXPECT_TRUE(
      wait_until([&] { return *console.count == 1 && *gui.count == 1; }));
}

TEST(TpsPubSubTest, MismatchedCallbackHandlerArraysThrow) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  Counter<SkiRental> counter;
  EXPECT_THROW(tps.subscribe({counter.callback}, {}), PsException);
}

TEST(TpsPubSubTest, NullCallbackRejected) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  EXPECT_THROW(tps.subscribe(nullptr, ignore_exceptions<SkiRental>()),
               PsException);
}

TEST(TpsPubSubTest, SubscriberOnSamePeerAsPublisher) {
  // Space decoupling includes the degenerate case: same peer, same engine.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  Counter<SkiRental> counter;
  tps.subscribe(counter.callback, ignore_exceptions<SkiRental>());
  tps.publish(SkiRental("S", 10, "B", 1));
  EXPECT_TRUE(wait_until([&] { return *counter.count == 1; }));
}

// --- unsubscription (paper methods (4)-(5)) ----------------------------------------

TEST(TpsUnsubscribeTest, RemovesExactlyTheSpecifiedPair) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> engine_a(alice, fast_config());
  auto sub = engine_a.new_interface();
  Counter<SkiRental> keep;
  Counter<SkiRental> drop;
  auto keep_handler = ignore_exceptions<SkiRental>();
  auto drop_handler = ignore_exceptions<SkiRental>();
  sub.subscribe(keep.callback, keep_handler);
  sub.subscribe(drop.callback, drop_handler);
  sub.unsubscribe(drop.callback, drop_handler);
  TpsEngine<SkiRental> engine_b(bob, fast_config());
  auto pub = engine_b.new_interface();
  // Publish until the first delivery lands (pub/sub is decoupled and
  // lossy: events published before the advertisement sets converge are
  // not replayed).
  EXPECT_TRUE(wait_until([&] {
    pub.publish(SkiRental("S", 10, "B", 1));
    return *keep.count >= 1;
  }));
  p2p::testing::settle(std::chrono::milliseconds(150));
  EXPECT_EQ(*drop.count, 0);
}

TEST(TpsUnsubscribeTest, UnknownPairThrows) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  Counter<SkiRental> counter;
  auto handler = ignore_exceptions<SkiRental>();
  EXPECT_THROW(tps.unsubscribe(counter.callback, handler), PsException);
}

TEST(TpsUnsubscribeTest, UnsubscribeAllSilencesEverything) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> engine_a(alice, fast_config());
  auto sub = engine_a.new_interface();
  Counter<SkiRental> c1;
  Counter<SkiRental> c2;
  sub.subscribe(c1.callback, ignore_exceptions<SkiRental>());
  sub.subscribe(c2.callback, ignore_exceptions<SkiRental>());
  sub.unsubscribe();  // paper method (5)
  TpsEngine<SkiRental> engine_b(bob, fast_config());
  auto pub = engine_b.new_interface();
  pub.publish(SkiRental("S", 10, "B", 1));
  p2p::testing::settle(std::chrono::milliseconds(300));
  EXPECT_EQ(*c1.count, 0);
  EXPECT_EQ(*c2.count, 0);
}

// --- history (paper methods (6)-(7)) -------------------------------------------------

TEST(TpsHistoryTest, ObjectsSentAndReceived) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> engine_a(alice, fast_config());
  auto sub = engine_a.new_interface();
  Counter<SkiRental> counter;
  sub.subscribe(counter.callback, ignore_exceptions<SkiRental>());
  TpsEngine<SkiRental> engine_b(bob, fast_config());
  auto pub = engine_b.new_interface();
  pub.publish(SkiRental("A", 1, "B", 1));
  pub.publish(SkiRental("C", 2, "D", 2));
  ASSERT_TRUE(wait_until([&] { return *counter.count == 2; }));
  EXPECT_EQ(pub.objects_sent().size(), 2u);
  EXPECT_EQ(pub.objects_sent()[0]->shop(), "A");
  EXPECT_EQ(sub.objects_received().size(), 2u);
  EXPECT_EQ(sub.objects_sent().size(), 0u);
}

TEST(TpsHistoryTest, HistoryDisabledByConfig) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsConfig config = fast_config();
  config.record_history = false;
  TpsEngine<SkiRental> engine(alice, config);
  auto tps = engine.new_interface();
  tps.publish(SkiRental("S", 1, "B", 1));
  EXPECT_TRUE(tps.objects_sent().empty());
}

// --- duplicate suppression (SR functionality (3)) --------------------------------------

TEST(TpsDedupTest, MultipleAdvertisementsStillDeliverOnce) {
  // Force the two-advertisements situation (independent creation under a
  // partition, then heal), then check subscribers see every event exactly
  // once while the wire carried it more than once.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  net.fabric().partition("alice", "bob");
  TpsConfig config = fast_config();
  config.adv_search_timeout = std::chrono::milliseconds(1);
  TpsEngine<SkiRental> engine_a(alice, config);
  TpsEngine<SkiRental> engine_b(bob, config);
  auto sub = engine_a.new_interface();
  auto pub = engine_b.new_interface();
  net.fabric().heal("alice", "bob");
  ASSERT_TRUE(wait_until([&] {
    return sub.advertisement_count() == 2 && pub.advertisement_count() == 2;
  }));
  Counter<SkiRental> counter;
  sub.subscribe(counter.callback, ignore_exceptions<SkiRental>());
  for (int i = 0; i < 10; ++i) {
    pub.publish(SkiRental("S", static_cast<float>(i), "B", 1));
  }
  ASSERT_TRUE(wait_until([&] { return *counter.count >= 10; }));
  p2p::testing::settle(std::chrono::milliseconds(300));
  EXPECT_EQ(*counter.count, 10);  // exactly once each
  const auto stats = sub.stats();
  EXPECT_EQ(stats.received_unique, 10u);
  EXPECT_GT(stats.duplicates_suppressed, 0u);  // copies were on the wire
  EXPECT_EQ(pub.stats().wire_sends, 20u);      // 10 events x 2 advs
}

// --- hierarchy dispatch (paper Fig. 7) ---------------------------------------------------

TEST(TpsHierarchyTest, SubtypeReachesBaseSubscriber) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<News> engine_a(alice, fast_config());
  auto sub = engine_a.new_interface();
  std::atomic<int> ski_news{0};
  sub.subscribe(make_callback<News>([&](const News& n) {
                  if (dynamic_cast<const SkiNews*>(&n) != nullptr) {
                    ++ski_news;
                  }
                }),
                ignore_exceptions<News>());
  TpsEngine<SkiNews> engine_b(bob, fast_config());
  auto pub = engine_b.new_interface();
  pub.publish(SkiNews("Powder", "60cm", "Verbier"));
  EXPECT_TRUE(wait_until([&] { return ski_news == 1; }));
}

TEST(TpsHierarchyTest, BaseEventDoesNotReachSubtypeSubscriber) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SportsNews> engine_a(alice, fast_config());
  auto sub = engine_a.new_interface();
  Counter<SportsNews> counter;
  sub.subscribe(counter.callback, ignore_exceptions<SportsNews>());
  TpsEngine<News> engine_b(bob, fast_config());
  auto pub = engine_b.new_interface();
  pub.publish(News("general", "news"));
  p2p::testing::settle(std::chrono::milliseconds(400));
  EXPECT_EQ(*counter.count, 0);
}

TEST(TpsHierarchyTest, PublishSubtypeThroughBaseInterface) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  // The publisher must register the concrete subtype it intends to publish
  // (creating a TpsEngine for it would do the same).
  serial::register_event_with_ancestors<SkiRentalWithLessons>();
  TpsEngine<SkiRental> engine_a(alice, fast_config());
  auto sub = engine_a.new_interface();
  std::atomic<int> with_lessons{0};
  sub.subscribe(
      make_callback<SkiRental>([&](const SkiRental& r) {
        if (const auto* l = dynamic_cast<const SkiRentalWithLessons*>(&r)) {
          if (l->instructor() == "Hans") ++with_lessons;
        }
      }),
      ignore_exceptions<SkiRental>());
  TpsEngine<SkiRental> engine_b(bob, fast_config());
  auto pub = engine_b.new_interface();
  pub.publish(std::make_shared<const SkiRentalWithLessons>(
      "Shop", 30.0f, "Brand", 5.0f, "Hans"));
  EXPECT_TRUE(wait_until([&] { return with_lessons == 1; }));
}

TEST(TpsHierarchyTest, MiddleSubscriberGetsSubtypesNotSupertypes) {
  TestNet net;
  jxta::Peer& s = net.add_peer("sub");
  jxta::Peer& p = net.add_peer("pub");
  serial::register_event_with_ancestors<SkiNews>();
  TpsEngine<SportsNews> engine_s(s, fast_config());
  auto sub = engine_s.new_interface();
  Counter<SportsNews> counter;
  sub.subscribe(counter.callback, ignore_exceptions<SportsNews>());

  TpsEngine<News> engine_p(p, fast_config());
  auto pub = engine_p.new_interface();
  pub.publish(News("plain", "x"));                             // no
  pub.publish(std::make_shared<const SportsNews>("s", "x", "golf"));  // yes
  pub.publish(std::make_shared<const SkiNews>("k", "x", "Davos"));    // yes
  EXPECT_TRUE(wait_until([&] { return *counter.count == 2; }));
  p2p::testing::settle(std::chrono::milliseconds(200));
  EXPECT_EQ(*counter.count, 2);
}

// --- error paths ------------------------------------------------------------------------

TEST(TpsErrorTest, CallbackExceptionRoutedToPairedHandler) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> engine_a(alice, fast_config());
  auto sub = engine_a.new_interface();
  std::atomic<int> handled{0};
  std::atomic<bool> was_callback_exception{false};
  sub.subscribe(
      make_callback<SkiRental>([](const SkiRental&) {
        throw CallBackException("cannot render offer");
      }),
      make_exception_handler<SkiRental>([&](std::exception_ptr e) {
        ++handled;
        try {
          std::rethrow_exception(e);
        } catch (const CallBackException&) {
          was_callback_exception = true;
        } catch (...) {
        }
      }));
  Counter<SkiRental> healthy;
  sub.subscribe(healthy.callback, ignore_exceptions<SkiRental>());
  TpsEngine<SkiRental> engine_b(bob, fast_config());
  auto pub = engine_b.new_interface();
  pub.publish(SkiRental("S", 10, "B", 1));
  EXPECT_TRUE(wait_until([&] { return handled == 1; }));
  EXPECT_TRUE(was_callback_exception);
  // The failing callback does not poison the healthy one.
  EXPECT_TRUE(wait_until([&] { return *healthy.count == 1; }));
  EXPECT_EQ(sub.stats().callback_errors, 1u);
}

TEST(TpsErrorTest, PublishingForeignSubtypeThroughWrongInterfaceThrows) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> ski_engine(alice, fast_config());
  auto ski = ski_engine.new_interface();
  // Register News in the registry too, then try to sneak it through the
  // SkiRental session via the type-erased path.
  serial::register_event_with_ancestors<News>();
  TpsEngine<News> news_engine(alice, fast_config());
  auto news = news_engine.new_interface();
  EXPECT_NO_THROW(news.publish(News("ok", "fine")));
  // The typed API makes the cross-publish a compile error; the dynamic
  // check is exercised via the shared_ptr overload and a base alias.
  // (SkiRental and News share no hierarchy.)
  // This is primarily a documentation-of-behaviour test.
  SUCCEED();
}

TEST(TpsErrorTest, InterfaceKeepsWorkingAfterEngineDestroyed) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  std::optional<TpsInterface<SkiRental>> tps;
  {
    TpsEngine<SkiRental> engine(alice, fast_config());
    tps = engine.new_interface();
  }  // engine gone; the interface owns the session
  Counter<SkiRental> counter;
  tps->subscribe(counter.callback, ignore_exceptions<SkiRental>());
  tps->publish(SkiRental("S", 10, "B", 1));
  EXPECT_TRUE(wait_until([&] { return *counter.count == 1; }));
}

// --- criteria (paper §4.3.2 parameter 2) ---------------------------------------------------

TEST(TpsCriteriaTest, FiltersDiscoveredAdvertisements) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  // Alice advertises first.
  TpsEngine<SkiRental> engine_a(alice, fast_config());
  auto tps_a = engine_a.new_interface();
  // Bob refuses advertisements created by alice; he must create his own.
  const jxta::PeerId alice_id = alice.id();
  TpsEngine<SkiRental> engine_b(bob, fast_config());
  auto tps_b = engine_b.new_interface(Criteria(
      [alice_id](const jxta::PeerGroupAdvertisement& adv) {
        return adv.creator != alice_id;
      }));
  EXPECT_EQ(tps_b.advertisement_count(), 1u);
  const auto advs = bob.discovery().get_local(jxta::DiscoveryType::kGroup,
                                              "Name", "PS_SkiRental");
  // Bob's cache can hold both, but his session bound only his own.
  bool bound_foreign = false;
  for (const auto& adv : advs) {
    if (adv->field("PID") == alice_id.to_string()) bound_foreign = true;
  }
  (void)bound_foreign;  // cache content is not the assertion
  SUCCEED();
}

TEST(TpsCriteriaTest, NullCriteriaAcceptsEverything) {
  const Criteria criteria;
  EXPECT_TRUE(criteria.is_null());
  jxta::PeerGroupAdvertisement adv;
  EXPECT_TRUE(criteria.accepts(adv));
}

// --- lifecycle ----------------------------------------------------------------------------

TEST(TpsLifecycleTest, SubscribeAfterPeerContextStillSafe) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  {
    auto tps = engine.new_interface();
    Counter<SkiRental> counter;
    tps.subscribe(counter.callback, ignore_exceptions<SkiRental>());
    tps.publish(SkiRental("S", 1, "B", 1));
    ASSERT_TRUE(wait_until([&] { return *counter.count == 1; }));
  }  // interface (and session) destroyed while the peer keeps running
  // Peer still healthy: a fresh interface works.
  auto tps2 = engine.new_interface();
  Counter<SkiRental> counter2;
  tps2.subscribe(counter2.callback, ignore_exceptions<SkiRental>());
  tps2.publish(SkiRental("S", 2, "B", 1));
  EXPECT_TRUE(wait_until([&] { return *counter2.count == 1; }));
}

TEST(TpsLifecycleTest, StatsAccumulate) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps = engine.new_interface();
  Counter<SkiRental> counter;
  tps.subscribe(counter.callback, ignore_exceptions<SkiRental>());
  for (int i = 0; i < 5; ++i) tps.publish(SkiRental("S", 1, "B", 1));
  ASSERT_TRUE(wait_until([&] { return *counter.count == 5; }));
  const auto stats = tps.stats();
  EXPECT_EQ(stats.published, 5u);
  EXPECT_EQ(stats.received_unique, 5u);
  EXPECT_GE(stats.wire_sends, 5u);
  EXPECT_EQ(stats.decode_failures, 0u);
}

}  // namespace
}  // namespace p2p::tps
