// Tests for the event codec framework and the type registry (the runtime
// subtype lattice TPS dispatches on).
#include <gtest/gtest.h>

#include "events/news.h"
#include "events/ski_rental.h"
#include "serial/type_registry.h"
#include "util/random.h"

namespace p2p::serial {
namespace {

using events::News;
using events::SkiNews;
using events::SkiRental;
using events::SkiRentalWithLessons;
using events::SportsNews;

// A local registry per test keeps the global one clean.
class SerialTest : public ::testing::Test {
 protected:
  TypeRegistry registry_;
};

TEST_F(SerialTest, RegisterAndFindByName) {
  registry_.register_event<News>();
  const auto info = registry_.find("News");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->name, "News");
  EXPECT_EQ(info->parent, "");
  EXPECT_FALSE(registry_.find("Nope").has_value());
}

TEST_F(SerialTest, FindByTypeIndex) {
  registry_.register_event<News>();
  const News n{"h", "b"};
  const Event& as_event = n;
  const auto info = registry_.find(std::type_index(typeid(as_event)));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->name, "News");
}

TEST_F(SerialTest, ReRegistrationIsIdempotent) {
  registry_.register_event<News>();
  registry_.register_event<News>();
  EXPECT_EQ(registry_.size(), 1u);
}

TEST_F(SerialTest, NameCollisionWithDifferentTypeThrows) {
  registry_.register_event<News>();
  struct FakeNews : Event {};
  // Hand-build a TypeInfo with the same name but a different C++ type by
  // abusing register_event via a local traits specialization is not
  // possible here; instead verify through the public API that the same
  // name maps to the registered C++ type.
  const auto info = registry_.find("News");
  EXPECT_EQ(info->cpp_type, std::type_index(typeid(News)));
}

TEST_F(SerialTest, ParentMustBeRegisteredFirst) {
  EXPECT_THROW(registry_.register_event<SportsNews>(),
               util::InvalidArgument);
  registry_.register_event<News>();
  EXPECT_NO_THROW(registry_.register_event<SportsNews>());
}

TEST_F(SerialTest, RegisterWithAncestorsHandlesChains) {
  register_event_with_ancestors<SkiNews>(registry_);
  EXPECT_TRUE(registry_.find("News").has_value());
  EXPECT_TRUE(registry_.find("SportsNews").has_value());
  EXPECT_TRUE(registry_.find("SkiNews").has_value());
}

TEST_F(SerialTest, AncestryChains) {
  register_event_with_ancestors<SkiNews>(registry_);
  EXPECT_EQ(registry_.ancestry("SkiNews"),
            (std::vector<std::string>{"SkiNews", "SportsNews", "News"}));
  EXPECT_EQ(registry_.ancestry("News"), (std::vector<std::string>{"News"}));
  EXPECT_THROW(registry_.ancestry("Unknown"), util::NotFoundError);
}

TEST_F(SerialTest, SubtypeQueries) {
  register_event_with_ancestors<SkiNews>(registry_);
  EXPECT_TRUE(registry_.is_subtype("SkiNews", "News"));
  EXPECT_TRUE(registry_.is_subtype("SkiNews", "SkiNews"));
  EXPECT_FALSE(registry_.is_subtype("News", "SkiNews"));
  auto subs = registry_.subtypes("News");
  std::sort(subs.begin(), subs.end());
  EXPECT_EQ(subs,
            (std::vector<std::string>{"News", "SkiNews", "SportsNews"}));
  EXPECT_EQ(registry_.subtypes("SkiNews"),
            std::vector<std::string>{"SkiNews"});
}

TEST_F(SerialTest, EncodeDecodeTaggedRoundTrip) {
  register_event_with_ancestors<SkiRentalWithLessons>(registry_);
  const SkiRentalWithLessons original("Shop", 12.5f, "Brand", 3.0f, "Hans");
  const util::Bytes wire = registry_.encode_tagged(original);
  const auto decoded = registry_.decode_tagged(wire);
  EXPECT_EQ(decoded.type_name, "SkiRentalWithLessons");
  const auto* typed =
      dynamic_cast<const SkiRentalWithLessons*>(decoded.event.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(*typed, original);
}

TEST_F(SerialTest, DecodedSubtypeUsableThroughBase) {
  register_event_with_ancestors<SkiNews>(registry_);
  const SkiNews original("Powder!", "60cm fresh", "Zermatt");
  const auto decoded = registry_.decode_tagged(
      registry_.encode_tagged(original));
  // The Java behaviour the paper relies on: deserialize the concrete type,
  // observe it through the supertype.
  const auto* as_news = dynamic_cast<const News*>(decoded.event.get());
  ASSERT_NE(as_news, nullptr);
  EXPECT_EQ(as_news->headline(), "Powder!");
  const auto* as_ski = dynamic_cast<const SkiNews*>(as_news);
  ASSERT_NE(as_ski, nullptr);
  EXPECT_EQ(as_ski->resort(), "Zermatt");
}

TEST_F(SerialTest, EncodeUnregisteredDynamicTypeThrows) {
  registry_.register_event<News>();
  const SportsNews sports("h", "b", "golf");  // dynamic type unregistered
  EXPECT_THROW((void)registry_.encode_tagged(sports), util::NotFoundError);
}

TEST_F(SerialTest, DecodeUnknownTagThrows) {
  registry_.register_event<News>();
  util::ByteWriter w;
  w.write_string("Mystery");
  w.write_bytes(util::Bytes{1, 2, 3});
  EXPECT_THROW((void)registry_.decode_tagged(w.data()),
               util::NotFoundError);
}

TEST_F(SerialTest, DecodeTruncatedPayloadThrows) {
  registry_.register_event<News>();
  util::ByteWriter w;
  w.write_string("News");
  w.write_bytes(util::Bytes{1});  // not a valid News body
  EXPECT_THROW((void)registry_.decode_tagged(w.data()), util::ParseError);
}

TEST_F(SerialTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&TypeRegistry::global(), &TypeRegistry::global());
}

// Property: every sample event type round-trips over randomized field
// values (parameterized gtest over seeds).
class CodecProperty : public ::testing::TestWithParam<int> {};

TEST_P(CodecProperty, SkiRentalRoundTrips) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  TypeRegistry registry;
  register_event_with_ancestors<SkiRentalWithLessons>(registry);
  for (int i = 0; i < 50; ++i) {
    const SkiRental original(
        std::string(rng.next_below(30), 'a'),
        static_cast<float>(rng.next_double() * 500),
        std::string(rng.next_below(10), 'b'),
        static_cast<float>(rng.next_below(365)));
    const auto decoded = registry.decode_tagged(
        registry.encode_tagged(original));
    const auto* typed = dynamic_cast<const SkiRental*>(decoded.event.get());
    ASSERT_NE(typed, nullptr);
    EXPECT_EQ(*typed, original);
  }
}

TEST_P(CodecProperty, NewsHierarchyRoundTrips) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  TypeRegistry registry;
  register_event_with_ancestors<SkiNews>(registry);
  for (int i = 0; i < 50; ++i) {
    const SkiNews original(std::string(rng.next_below(50), 'h'),
                           std::string(rng.next_below(200), 'x'),
                           std::string(rng.next_below(20), 'r'));
    const auto decoded = registry.decode_tagged(
        registry.encode_tagged(original));
    const auto* typed = dynamic_cast<const SkiNews*>(decoded.event.get());
    ASSERT_NE(typed, nullptr);
    EXPECT_EQ(*typed, original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace p2p::serial
