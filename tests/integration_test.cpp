// End-to-end integration tests: full TPS stacks over realistic topologies —
// real TCP sockets, lossy links, multi-rendezvous WANs, firewalled peers,
// churn.
#include <gtest/gtest.h>

#include <atomic>

#include "events/ski_rental.h"
#include "net/tcp_transport.h"
#include "support/test_net.h"
#include "support/timing.h"
#include "tps/tps.h"

namespace p2p {
namespace {

using events::SkiRental;
using testing::TestNet;
using testing::wait_until;

tps::TpsConfig fast_config() {
  tps::TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(300);
  config.finder_period = std::chrono::milliseconds(150);
  return config;
}

// --- real sockets -------------------------------------------------------------

TEST(TcpIntegrationTest, TpsPubSubOverRealSockets) {
  // Two peers talking through actual loopback TCP; no simulated fabric at
  // all. TCP has no multicast, so a rendezvous bridges them.
  jxta::PeerConfig rdv_config;
  rdv_config.name = "rdv";
  rdv_config.rendezvous = true;
  rdv_config.heartbeat = std::chrono::milliseconds(100);
  jxta::Peer rdv(rdv_config);
  auto rdv_transport = std::make_shared<net::TcpTransport>();
  const net::Address rdv_addr = rdv_transport->local_address();
  rdv.add_transport(rdv_transport);
  rdv.start();

  const auto make_peer = [&](const std::string& name) {
    jxta::PeerConfig config;
    config.name = name;
    config.heartbeat = std::chrono::milliseconds(100);
    config.seed_rendezvous = {rdv_addr};
    auto peer = std::make_unique<jxta::Peer>(config);
    peer->add_transport(std::make_shared<net::TcpTransport>());
    peer->start();
    return peer;
  };
  auto sub_peer = make_peer("tcp-sub");
  auto pub_peer = make_peer("tcp-pub");
  ASSERT_TRUE(wait_until([&] {
    return sub_peer->rendezvous().connected() &&
           pub_peer->rendezvous().connected();
  }));

  tps::TpsEngine<SkiRental> sub_engine(*sub_peer, fast_config());
  auto sub = sub_engine.new_interface();
  std::atomic<int> got{0};
  sub.subscribe(
      tps::make_callback<SkiRental>([&](const SkiRental&) { ++got; }),
      tps::ignore_exceptions<SkiRental>());

  tps::TpsEngine<SkiRental> pub_engine(*pub_peer, fast_config());
  auto pub = pub_engine.new_interface();
  EXPECT_TRUE(wait_until([&] {
    pub.publish(SkiRental("TCP", 1, "Shop", 1));
    return got >= 1;
  }));
  pub_peer->stop();
  sub_peer->stop();
  rdv.stop();
}

// --- lossy network ---------------------------------------------------------------

TEST(LossIntegrationTest, EventsStillFlowOnALossyNetwork) {
  // JXTA 1.0 "is not reliable" (paper footnote in §5.1) and neither is our
  // wire: with 20% datagram loss some events vanish, but the system keeps
  // working and never delivers duplicates or garbage.
  TestNet net;
  jxta::Peer& sub_peer = net.add_peer("sub");
  jxta::Peer& pub_peer = net.add_peer("pub");

  tps::TpsEngine<SkiRental> sub_engine(sub_peer, fast_config());
  auto sub = sub_engine.new_interface();
  std::atomic<int> got{0};
  sub.subscribe(
      tps::make_callback<SkiRental>([&](const SkiRental&) { ++got; }),
      tps::ignore_exceptions<SkiRental>());
  tps::TpsEngine<SkiRental> pub_engine(pub_peer, fast_config());
  auto pub = pub_engine.new_interface();

  // Make sure the path works, then add loss.
  EXPECT_TRUE(wait_until([&] {
    pub.publish(SkiRental("warm", 0, "up", 1));
    return got >= 1;
  }));
  const int after_warmup = got;
  net.fabric().set_default_link({.loss = 0.2});
  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) {
    pub.publish(SkiRental("S", static_cast<float>(i), "B", 1));
  }
  // Wait for the surviving deliveries to settle.
  p2p::testing::settle(std::chrono::milliseconds(800));
  const int delivered = got - after_warmup;
  EXPECT_GT(delivered, kEvents / 2);   // most got through
  EXPECT_LE(delivered, kEvents);       // never more than published
  EXPECT_EQ(sub.stats().decode_failures, 0u);
}

// --- multi-rendezvous WAN ----------------------------------------------------------

TEST(WanIntegrationTest, EventsCrossTwoRendezvousSubnets) {
  // Two firewalled edge peers, each leased onto its own rendezvous; the
  // rendezvous lease onto each other. Events must cross: edge1 -> rdv1 ->
  // rdv2 -> edge2 (multicast cannot reach firewalled nodes).
  TestNet net;
  jxta::Peer& rdv1 = net.add_peer("rdv1", /*rendezvous=*/true, true);
  jxta::Peer& rdv2 =
      net.add_peer("rdv2", /*rendezvous=*/true, true, {"rdv1"});
  jxta::Peer& edge1 = net.add_peer("edge1", false, false, {"rdv1"});
  jxta::Peer& edge2 = net.add_peer("edge2", false, false, {"rdv2"});
  net.fabric().set_firewalled("edge1", true);
  net.fabric().set_firewalled("edge2", true);
  edge1.tick();  // punch fresh firewall holes with a lease renewal
  edge2.tick();
  ASSERT_TRUE(wait_until([&] {
    return edge1.rendezvous().connected() &&
           edge2.rendezvous().connected() && rdv2.rendezvous().connected();
  }));

  tps::TpsEngine<SkiRental> sub_engine(edge2, fast_config());
  auto sub = sub_engine.new_interface();
  std::atomic<int> got{0};
  sub.subscribe(
      tps::make_callback<SkiRental>([&](const SkiRental&) { ++got; }),
      tps::ignore_exceptions<SkiRental>());

  tps::TpsEngine<SkiRental> pub_engine(edge1, fast_config());
  auto pub = pub_engine.new_interface();
  EXPECT_TRUE(wait_until([&] {
    pub.publish(SkiRental("X", 1, "B", 1));
    return got >= 1;
  }));
  (void)rdv1;
}

// --- churn ----------------------------------------------------------------------------

TEST(ChurnIntegrationTest, LateSubscriberSeesOnlyNewEvents) {
  // Time decoupling has limits without persistence: a subscriber that
  // joins late receives events published after it bound, not before.
  TestNet net;
  jxta::Peer& pub_peer = net.add_peer("pub");
  tps::TpsEngine<SkiRental> pub_engine(pub_peer, fast_config());
  auto pub = pub_engine.new_interface();
  pub.publish(SkiRental("early", 1, "B", 1));

  jxta::Peer& sub_peer = net.add_peer("late-sub");
  tps::TpsEngine<SkiRental> sub_engine(sub_peer, fast_config());
  auto sub = sub_engine.new_interface();
  std::mutex mu;
  std::vector<std::string> shops;
  sub.subscribe(tps::make_callback<SkiRental>([&](const SkiRental& e) {
                  const std::lock_guard lock(mu);
                  shops.push_back(e.shop());
                }),
                tps::ignore_exceptions<SkiRental>());
  EXPECT_TRUE(wait_until([&] {
    pub.publish(SkiRental("new", 1, "B", 1));
    const std::lock_guard lock(mu);
    return !shops.empty();
  }));
  const std::lock_guard lock(mu);
  for (const auto& shop : shops) {
    EXPECT_EQ(shop, "new");  // the pre-subscription event never replays
  }
}

TEST(ChurnIntegrationTest, PublisherSurvivesSubscriberDeparture) {
  TestNet net;
  jxta::Peer& pub_peer = net.add_peer("pub");
  auto sub_net_peer = std::make_unique<jxta::Peer>(jxta::PeerConfig{
      .name = "doomed",
      .heartbeat = std::chrono::milliseconds(100)});
  sub_net_peer->add_transport(
      std::make_shared<net::InProcTransport>(net.fabric(), "doomed"));
  sub_net_peer->start();

  std::atomic<int> got{0};
  tps::TpsEngine<SkiRental> pub_engine(pub_peer, fast_config());
  std::optional<tps::TpsInterface<SkiRental>> pub;
  {
    // Sessions must not outlive their peer: the subscriber interface goes
    // first, then its peer — then the world moves on without them.
    tps::TpsEngine<SkiRental> sub_engine(*sub_net_peer, fast_config());
    auto sub = sub_engine.new_interface();
    sub.subscribe(
        tps::make_callback<SkiRental>([&](const SkiRental&) { ++got; }),
        tps::ignore_exceptions<SkiRental>());
    pub.emplace(pub_engine.new_interface());
    ASSERT_TRUE(wait_until([&] {
      pub->publish(SkiRental("S", 1, "B", 1));
      return got >= 1;
    }));
  }
  // Subscriber vanishes abruptly.
  sub_net_peer->stop();
  sub_net_peer.reset();
  // Publishing into the void must neither throw nor block.
  for (int i = 0; i < 20; ++i) {
    EXPECT_NO_THROW(pub->publish(SkiRental("S", 2, "B", 1)));
  }
}

TEST(ChurnIntegrationTest, SubscriberSurvivesPublisherDeparture) {
  TestNet net;
  jxta::Peer& sub_peer = net.add_peer("sub");
  tps::TpsEngine<SkiRental> sub_engine(sub_peer, fast_config());
  auto sub = sub_engine.new_interface();
  std::atomic<int> got{0};
  sub.subscribe(
      tps::make_callback<SkiRental>([&](const SkiRental&) { ++got; }),
      tps::ignore_exceptions<SkiRental>());
  {
    auto pub_peer = std::make_unique<jxta::Peer>(jxta::PeerConfig{
        .name = "pub", .heartbeat = std::chrono::milliseconds(100)});
    pub_peer->add_transport(
        std::make_shared<net::InProcTransport>(net.fabric(), "pub"));
    pub_peer->start();
    tps::TpsEngine<SkiRental> pub_engine(*pub_peer, fast_config());
    auto pub = pub_engine.new_interface();
    ASSERT_TRUE(wait_until([&] {
      pub.publish(SkiRental("S", 1, "B", 1));
      return got >= 1;
    }));
    pub_peer->stop();
  }
  // A second publisher shows the topic outlives any single publisher
  // (space decoupling: "do not need to know each other").
  jxta::Peer& pub2_peer = net.add_peer("pub2");
  tps::TpsEngine<SkiRental> pub2_engine(pub2_peer, fast_config());
  auto pub2 = pub2_engine.new_interface();
  const int before = got;
  EXPECT_TRUE(wait_until([&] {
    pub2.publish(SkiRental("S2", 1, "B", 1));
    return got > before;
  }));
}

// --- interop: TPS and SR-JXTA coexist on one peer -------------------------------------

TEST(CoexistenceTest, TpsAndRawWireShareAPeer) {
  // The TPS layer must not interfere with other JXTA usage on the same
  // peer: a raw wire conversation on an unrelated group keeps working.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");

  tps::TpsEngine<SkiRental> engine(alice, fast_config());
  auto tps_interface = engine.new_interface();

  jxta::PipeAdvertisement pipe;
  pipe.pid = jxta::PipeId::derive("coexist");
  pipe.name = "coexist";
  pipe.type = jxta::PipeAdvertisement::Type::kPropagate;
  jxta::PeerGroupAdvertisement group_adv;
  group_adv.gid = jxta::PeerGroupId::derive("coexist-group");
  group_adv.creator = alice.id();
  group_adv.name = "coexist-group";
  auto wire_svc = jxta::WireService::make_service_advertisement(pipe);
  group_adv.services.emplace(wire_svc.name, std::move(wire_svc));

  auto g_alice = alice.create_group(group_adv);
  auto g_bob = bob.create_group(group_adv);
  auto in = g_bob->wire().create_input_pipe(pipe);
  auto out = g_alice->wire().create_output_pipe(pipe);
  jxta::Message m;
  m.add_string("k", "raw");
  out->send(m);
  const auto received = in->poll(std::chrono::milliseconds(3000));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->get_string("k"), "raw");
}

}  // namespace
}  // namespace p2p
