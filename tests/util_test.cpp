// Unit tests for src/util: uuid, bytes, rng, stats, strings, clock, queue,
// executor, timer.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/bytes.h"
#include "util/clock.h"
#include "util/dedup_ring.h"
#include "util/error.h"
#include "util/executor.h"
#include "util/logging.h"
#include "util/queue.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/uuid.h"

#include "support/timing.h"

namespace p2p::util {
namespace {

// --- Uuid ---------------------------------------------------------------

TEST(UuidTest, DefaultIsNil) {
  EXPECT_TRUE(Uuid{}.is_nil());
  EXPECT_EQ(Uuid{}.to_string(), std::string(32, '0'));
}

TEST(UuidTest, GenerateIsNotNilAndUnique) {
  const Uuid a = Uuid::generate();
  const Uuid b = Uuid::generate();
  EXPECT_FALSE(a.is_nil());
  EXPECT_NE(a, b);
}

TEST(UuidTest, GenerateFromSeededRngIsDeterministic) {
  Rng r1(7);
  Rng r2(7);
  EXPECT_EQ(Uuid::generate(r1), Uuid::generate(r2));
}

TEST(UuidTest, ToStringRoundTrips) {
  const Uuid original = Uuid::generate();
  const auto parsed = Uuid::parse(original.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(UuidTest, ToStringIs32LowercaseHex) {
  const std::string text = Uuid::generate().to_string();
  EXPECT_EQ(text.size(), 32u);
  for (const char c : text) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(UuidTest, ParseRejectsBadInput) {
  EXPECT_FALSE(Uuid::parse("").has_value());
  EXPECT_FALSE(Uuid::parse("abc").has_value());
  EXPECT_FALSE(Uuid::parse(std::string(32, 'g')).has_value());
  EXPECT_FALSE(Uuid::parse(std::string(31, '0')).has_value());
  EXPECT_FALSE(Uuid::parse(std::string(33, '0')).has_value());
}

TEST(UuidTest, ParseAcceptsUppercase) {
  const auto parsed = Uuid::parse("ABCDEF0123456789ABCDEF0123456789");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_string(), "abcdef0123456789abcdef0123456789");
}

TEST(UuidTest, DeriveIsStable) {
  EXPECT_EQ(Uuid::derive("hello"), Uuid::derive("hello"));
  EXPECT_NE(Uuid::derive("hello"), Uuid::derive("hellp"));
  EXPECT_FALSE(Uuid::derive("").is_nil());
}

TEST(UuidTest, HashSpreads) {
  std::set<std::size_t> hashes;
  for (int i = 0; i < 100; ++i) {
    hashes.insert(std::hash<Uuid>{}(Uuid::generate()));
  }
  EXPECT_GT(hashes.size(), 95u);
}

// --- ByteWriter / ByteReader ------------------------------------------------

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.write_u8(0xab);
  w.write_u16(0xbeef);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_f64(3.14159);
  w.write_bool(true);
  w.write_bool(false);
  ByteReader r(w.data());
  EXPECT_EQ(r.read_u8(), 0xab);
  EXPECT_EQ(r.read_u16(), 0xbeef);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_TRUE(r.at_end());
}

TEST(BytesTest, VarintBoundaries) {
  const std::uint64_t cases[] = {0,    1,    127,        128,
                                 255,  300,  16383,      16384,
                                 1u << 21,   (1ull << 35) + 5,
                                 ~0ull};
  for (const auto v : cases) {
    ByteWriter w;
    w.write_varint(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.read_varint(), v) << v;
    EXPECT_TRUE(r.at_end());
  }
}

TEST(BytesTest, VarintEncodingIsMinimal) {
  ByteWriter w;
  w.write_varint(127);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.write_varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(BytesTest, ZigZagRoundTrip) {
  const std::int64_t cases[] = {0, 1, -1, 63, -64, 1000000, -1000000,
                                INT64_MAX, INT64_MIN};
  for (const auto v : cases) {
    ByteWriter w;
    w.write_i64(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.read_i64(), v) << v;
  }
}

TEST(BytesTest, SmallNegativesStayShort) {
  ByteWriter w;
  w.write_i64(-1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(BytesTest, StringAndBytesRoundTrip) {
  const Bytes blob{0x00, 0x01, 0x02};
  ByteWriter w;
  w.write_string("hello world");
  w.write_string("");
  w.write_bytes(blob);
  ByteReader r(w.data());
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_bytes(), blob);
}

TEST(BytesTest, RawRoundTrip) {
  ByteWriter w;
  w.write_raw(to_bytes("abc"));
  ByteReader r(w.data());
  EXPECT_EQ(to_string(r.read_raw(3)), "abc");
}

TEST(BytesTest, TruncatedInputThrows) {
  ByteWriter w;
  w.write_u32(42);
  ByteReader r(w.data());
  r.read_u16();
  EXPECT_THROW(r.read_u32(), ParseError);
}

TEST(BytesTest, TruncatedStringThrows) {
  ByteWriter w;
  w.write_varint(100);  // claims 100 bytes, provides none
  ByteReader r(w.data());
  EXPECT_THROW(r.read_string(), ParseError);
}

TEST(BytesTest, OverlongVarintThrows) {
  Bytes evil(11, 0xff);  // 11 continuation bytes > max 10
  ByteReader r(evil);
  EXPECT_THROW(r.read_varint(), ParseError);
}

TEST(BytesTest, EmptyReaderIsAtEnd) {
  ByteReader r({});
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.read_u8(), ParseError);
}

// --- the non-throwing (try_) surface and its caps -------------------------

TEST(BytesTest, TryReadsMatchThrowingReads) {
  ByteWriter w;
  w.write_u8(7);
  w.write_varint(300);
  w.write_string("abc");
  ByteReader r(w.data());
  std::uint8_t u8 = 0;
  std::uint64_t var = 0;
  std::string s;
  EXPECT_TRUE(r.try_read_u8(u8));
  EXPECT_TRUE(r.try_read_varint(var));
  EXPECT_TRUE(r.try_read_string(s));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(var, 300u);
  EXPECT_EQ(s, "abc");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(BytesTest, TryReadsOnEmptyBufferFailWithTruncated) {
  ByteReader r({});
  std::uint8_t u8;
  std::uint16_t u16;
  std::uint32_t u32;
  std::uint64_t u64;
  std::int64_t i64;
  double f64;
  bool b;
  std::string s;
  Bytes bytes;
  EXPECT_FALSE(r.try_read_u8(u8));
  EXPECT_FALSE(r.try_read_u16(u16));
  EXPECT_FALSE(r.try_read_u32(u32));
  EXPECT_FALSE(r.try_read_u64(u64));
  EXPECT_FALSE(r.try_read_i64(i64));
  EXPECT_FALSE(r.try_read_f64(f64));
  EXPECT_FALSE(r.try_read_bool(b));
  EXPECT_FALSE(r.try_read_string(s));
  EXPECT_FALSE(r.try_read_bytes(bytes));
  EXPECT_FALSE(r.try_read_raw(1, bytes));
  EXPECT_EQ(r.error(), DecodeError::kTruncated);
}

TEST(BytesTest, VarintMaxWidthRoundTripsAndOverflowIsClassified) {
  // ~0ull needs the full ten bytes; the tenth may only contribute one bit.
  ByteWriter w;
  w.write_varint(~0ull);
  EXPECT_EQ(w.size(), 10u);
  ByteReader ok_r(w.data());
  std::uint64_t v = 0;
  EXPECT_TRUE(ok_r.try_read_varint(v));
  EXPECT_EQ(v, ~0ull);

  Bytes evil(9, 0xff);
  evil.push_back(0x02);  // 65th significant bit
  ByteReader r(evil);
  EXPECT_FALSE(r.try_read_varint(v));
  EXPECT_EQ(r.error(), DecodeError::kVarintOverflow);
}

TEST(BytesTest, ZigZagExtremesSurviveTheTrySurface) {
  for (const std::int64_t v : {INT64_MIN, INT64_MAX}) {
    ByteWriter w;
    w.write_i64(v);
    ByteReader r(w.data());
    std::int64_t out = 0;
    EXPECT_TRUE(r.try_read_i64(out));
    EXPECT_EQ(out, v);
  }
}

TEST(BytesTest, ZeroLengthStringAndBytesAreValid) {
  ByteWriter w;
  w.write_string("");
  w.write_bytes(Bytes{});
  w.write_raw(Bytes{});  // writes nothing
  ByteReader r(w.data());
  std::string s = "sentinel";
  Bytes b{1, 2, 3};
  EXPECT_TRUE(r.try_read_string(s));
  EXPECT_TRUE(r.try_read_bytes(b));
  EXPECT_EQ(s, "");
  EXPECT_TRUE(b.empty());
  Bytes raw;
  EXPECT_TRUE(r.try_read_raw(0, raw));
  EXPECT_TRUE(raw.empty());
  EXPECT_TRUE(r.at_end());
}

TEST(BytesTest, LengthCapIsCheckedBeforeTruncation) {
  // A 4 GiB claim against a 1 KiB cap must classify as the cap, not as
  // truncation — the caller learns the frame was hostile, not merely cut.
  ByteWriter w;
  w.write_varint(std::uint64_t{1} << 32);
  const DecodeLimits limits{.max_length = 1024};
  ByteReader r(w.data(), limits);
  Bytes out;
  EXPECT_FALSE(r.try_read_bytes(out));
  EXPECT_EQ(r.error(), DecodeError::kLengthCap);
}

TEST(BytesTest, CountCapIsClassified) {
  ByteWriter w;
  w.write_varint(std::uint64_t{1} << 30);
  const DecodeLimits limits{.max_count = 4096};
  ByteReader r(w.data(), limits);
  std::uint64_t count = 0;
  EXPECT_FALSE(r.try_read_count(count));
  EXPECT_EQ(r.error(), DecodeError::kCountCap);
}

TEST(BytesTest, NestingGuardTripsAtDepthCap) {
  const DecodeLimits limits{.max_depth = 2};
  ByteReader r({}, limits);
  EXPECT_TRUE(r.enter_nested());
  EXPECT_TRUE(r.enter_nested());
  EXPECT_FALSE(r.enter_nested());
  EXPECT_EQ(r.error(), DecodeError::kDepthCap);
}

TEST(BytesTest, ErrorsAreStickyAcrossTheWholeSurface) {
  ByteWriter w;
  w.write_u8(1);
  ByteReader r(w.data());
  std::uint64_t u64 = 0;
  EXPECT_FALSE(r.try_read_u64(u64));  // truncated
  std::uint8_t u8 = 0;
  EXPECT_FALSE(r.try_read_u8(u8));  // would succeed on a fresh reader
  EXPECT_THROW((void)r.read_u8(), ParseError);
  EXPECT_EQ(r.error(), DecodeError::kTruncated);
}

TEST(BytesTest, FailLatchesDecoderLevelErrors) {
  ByteWriter w;
  w.write_u8(99);
  ByteReader r(w.data());
  std::uint8_t version = 0;
  EXPECT_TRUE(r.try_read_u8(version));
  r.fail(DecodeError::kBadValue);  // decoder rejects the version itself
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.try_read_u8(version));
  EXPECT_EQ(r.error(), DecodeError::kBadValue);
}

TEST(BytesTest, DecodeErrorNamesAreStable) {
  EXPECT_EQ(to_string(DecodeError::kNone), "none");
  EXPECT_EQ(to_string(DecodeError::kTruncated), "truncated");
  EXPECT_EQ(to_string(DecodeError::kVarintOverflow), "varint-overflow");
  EXPECT_EQ(to_string(DecodeError::kLengthCap), "length-cap");
  EXPECT_EQ(to_string(DecodeError::kCountCap), "count-cap");
  EXPECT_EQ(to_string(DecodeError::kDepthCap), "depth-cap");
  EXPECT_EQ(to_string(DecodeError::kBadValue), "bad-value");
}

TEST(BytesTest, HexDump) {
  const Bytes raw{0x00, 0xff, 0x10};
  EXPECT_EQ(to_hex(raw), "00ff10");
  EXPECT_EQ(to_hex({}), "");
}

// Property: arbitrary interleavings round-trip (parameterized by seed).
class BytesRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(BytesRoundTripProperty, RandomSequenceRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  ByteWriter w;
  struct Op {
    int kind;
    std::uint64_t u;
    std::int64_t i;
    std::string s;
  };
  std::vector<Op> ops;
  for (int k = 0; k < 200; ++k) {
    Op op;
    op.kind = static_cast<int>(rng.next_below(4));
    op.u = rng.next_u64();
    op.i = static_cast<std::int64_t>(rng.next_u64());
    op.s = std::string(rng.next_below(40), 'x');
    switch (op.kind) {
      case 0: w.write_varint(op.u); break;
      case 1: w.write_i64(op.i); break;
      case 2: w.write_string(op.s); break;
      case 3: w.write_u64(op.u); break;
    }
    ops.push_back(std::move(op));
  }
  ByteReader r(w.data());
  for (const auto& op : ops) {
    switch (op.kind) {
      case 0: EXPECT_EQ(r.read_varint(), op.u); break;
      case 1: EXPECT_EQ(r.read_i64(), op.i); break;
      case 2: EXPECT_EQ(r.read_string(), op.s); break;
      case 3: EXPECT_EQ(r.read_u64(), op.u); break;
    }
  }
  EXPECT_TRUE(r.at_end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesRoundTripProperty,
                         ::testing::Range(0, 10));

// --- Rng ---------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextBoolProbabilityEdges) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

// --- Summary / RateSeries ----------------------------------------------------

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0);
  EXPECT_EQ(s.stddev(), 0);
  EXPECT_EQ(s.percentile(50), 0);
}

TEST(SummaryTest, MeanAndStddev) {
  Summary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(SummaryTest, SingleSampleHasZeroStddev) {
  Summary s;
  s.add(42);
  EXPECT_EQ(s.stddev(), 0);
  EXPECT_EQ(s.mean(), 42);
}

TEST(SummaryTest, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.percentile(50), 50);
  EXPECT_EQ(s.percentile(99), 99);
  EXPECT_EQ(s.percentile(100), 100);
  EXPECT_EQ(s.percentile(0), 1);
}

TEST(RateSeriesTest, BucketsEvents) {
  RateSeries series(1000);
  series.record(100);
  series.record(200);
  series.record(1100);
  series.record(3500);
  const auto buckets = series.buckets();
  ASSERT_EQ(buckets.size(), 4u);  // buckets 0..3
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(series.total(), 4u);
}

TEST(RateSeriesTest, EmptyHasNoBuckets) {
  EXPECT_TRUE(RateSeries(1000).buckets().empty());
}

// --- string_util --------------------------------------------------------------

TEST(StringTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringTest, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nhi\r\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("hi"), "hi");
}

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("PS_SkiRental", "PS_"));
  EXPECT_FALSE(starts_with("PS", "PS_"));
  EXPECT_TRUE(ends_with("file.xml", ".xml"));
  EXPECT_FALSE(ends_with("xml", ".xml"));
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool match;
};

class GlobTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobTest, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(glob_match(c.pattern, c.text), c.match)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GlobTest,
    ::testing::Values(
        GlobCase{"PS_SkiRental*", "PS_SkiRental", true},
        GlobCase{"PS_SkiRental*", "PS_SkiRentalXYZ", true},
        GlobCase{"PS_SkiRental*", "PS_Ski", false},
        GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
        GlobCase{"", "", true}, GlobCase{"", "x", false},
        GlobCase{"a*b", "ab", true}, GlobCase{"a*b", "aXXXb", true},
        GlobCase{"a*b", "aXXXc", false}, GlobCase{"a*b*c", "a1b2c", true},
        GlobCase{"a*b*c", "abc", true}, GlobCase{"exact", "exact", true},
        GlobCase{"exact", "exactly", false},
        GlobCase{"**", "whatever", true}));

TEST(StringTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

// --- clocks ---------------------------------------------------------------

TEST(ClockTest, SystemClockAdvances) {
  SystemClock clock;
  const auto a = clock.now();
  p2p::testing::settle(std::chrono::milliseconds(2));
  EXPECT_GT(clock.now(), a);
}

TEST(ClockTest, ManualClockOnlyMovesWhenAdvanced) {
  ManualClock clock;
  const auto a = clock.now();
  EXPECT_EQ(clock.now(), a);
  clock.advance(std::chrono::milliseconds(50));
  EXPECT_EQ(std::chrono::duration_cast<std::chrono::milliseconds>(
                clock.now() - a)
                .count(),
            50);
}

// --- BlockingQueue -------------------------------------------------------------

TEST(QueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(QueueTest, PopForTimesOut) {
  BlockingQueue<int> q;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(30)), std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
}

TEST(QueueTest, CloseWakesAndDrains) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));        // rejected after close
  EXPECT_EQ(q.pop(), 7);          // drains accepted items
  EXPECT_EQ(q.pop(), std::nullopt);  // then reports closed
}

TEST(QueueTest, CloseUnblocksWaiter) {
  BlockingQueue<int> q;
  std::thread waiter([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  p2p::testing::settle(std::chrono::milliseconds(20));
  q.close();
  waiter.join();
}

TEST(QueueTest, TryPop) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.try_pop(), std::nullopt);
  q.push(5);
  EXPECT_EQ(q.try_pop(), 5);
}

TEST(QueueTest, ConcurrentProducersConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      while (consumed < 4 * kPerProducer) {
        if (q.pop_for(std::chrono::milliseconds(100)).has_value()) {
          ++consumed;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(consumed, 4 * kPerProducer);
}

// --- SerialExecutor / PeriodicTimer ----------------------------------------------

TEST(ExecutorTest, RunsTasksInOrder) {
  SerialExecutor exec("test");
  std::vector<int> order;
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i) {
    exec.post([&, i] {
      const std::lock_guard lock(mu);
      order.push_back(i);
      if (i == 99) cv.notify_all();
    });
  }
  std::unique_lock lock(mu);
  cv.wait_for(lock, std::chrono::seconds(5), [&] { return order.size() == 100; });
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ExecutorTest, SurvivesThrowingTask) {
  SerialExecutor exec("test");
  std::atomic<bool> second_ran{false};
  exec.post([] { throw std::runtime_error("boom"); });
  exec.post([&] { second_ran = true; });
  exec.stop();
  EXPECT_TRUE(second_ran);
}

TEST(ExecutorTest, StopDrainsQueue) {
  SerialExecutor exec("test");
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    exec.post([&] { ++ran; });
  }
  exec.stop();
  EXPECT_EQ(ran, 50);
  EXPECT_FALSE(exec.post([] {}));  // rejected after stop
}

TEST(ExecutorTest, OnExecutorThread) {
  SerialExecutor exec("test");
  std::atomic<bool> inside{false};
  EXPECT_FALSE(exec.on_executor_thread());
  exec.post([&] { inside = exec.on_executor_thread(); });
  exec.stop();
  EXPECT_TRUE(inside);
}

TEST(TimerTest, FiresRepeatedly) {
  PeriodicTimer timer("test");
  std::atomic<int> fired{0};
  timer.schedule(std::chrono::milliseconds(10), [&] { ++fired; });
  p2p::testing::settle(std::chrono::milliseconds(100));
  timer.stop();
  EXPECT_GE(fired, 3);
}

TEST(TimerTest, CancelStopsFiring) {
  PeriodicTimer timer("test");
  std::atomic<int> fired{0};
  const auto handle =
      timer.schedule(std::chrono::milliseconds(10), [&] { ++fired; });
  p2p::testing::settle(std::chrono::milliseconds(50));
  timer.cancel(handle);
  const int at_cancel = fired;
  p2p::testing::settle(std::chrono::milliseconds(50));
  EXPECT_LE(fired, at_cancel + 1);  // at most one in-flight firing
  timer.stop();
}

TEST(TimerTest, MultipleEntriesIndependent) {
  PeriodicTimer timer("test");
  std::atomic<int> fast{0};
  std::atomic<int> slow{0};
  timer.schedule(std::chrono::milliseconds(10), [&] { ++fast; });
  timer.schedule(std::chrono::milliseconds(40), [&] { ++slow; });
  p2p::testing::settle(std::chrono::milliseconds(120));
  timer.stop();
  EXPECT_GT(fast, slow);
  EXPECT_GE(slow, 1);
}

TEST(TimerTest, SurvivesThrowingTask) {
  PeriodicTimer timer("test");
  std::atomic<int> fired{0};
  timer.schedule(std::chrono::milliseconds(10), [&] {
    ++fired;
    throw std::runtime_error("boom");
  });
  p2p::testing::settle(std::chrono::milliseconds(60));
  timer.stop();
  EXPECT_GE(fired, 2);
}

// --- logging ----------------------------------------------------------------

// An operand whose stream formatting is observable: if operator<< runs,
// the counter bumps.
struct FormatProbe {
  int* formats;
  friend std::ostream& operator<<(std::ostream& os, const FormatProbe& p) {
    ++*p.formats;
    return os << "probe";
  }
};

TEST(LoggingTest, DroppedLineNeverFormatsNorReachesSink) {
  int sink_calls = 0;
  int formats = 0;
  const auto previous = set_log_sink(
      [&](LogLevel, std::string_view, std::string_view) { ++sink_calls; });
  const LogLevel previous_level = log_level();
  set_log_level(LogLevel::kWarn);
  // The macro path: the whole statement after the level check is skipped,
  // so the operand is never even evaluated.
  P2P_LOG(kDebug, "test") << FormatProbe{&formats};
  {
    // The LogLine path: below-threshold lines must not engage the stream,
    // so streaming an operand into them formats nothing.
    detail::LogLine line(LogLevel::kInfo, "test");
    EXPECT_FALSE(line.enabled());
    line << FormatProbe{&formats};
  }
  set_log_sink(previous);
  set_log_level(previous_level);
  EXPECT_EQ(sink_calls, 0);
  EXPECT_EQ(formats, 0);
}

// --- DedupRing ----------------------------------------------------------

TEST(DedupRingTest, DetectsDuplicatesWithinCapacity) {
  DedupRing ring(8);
  const Uuid a{1, 1};
  const Uuid b{2, 2};
  EXPECT_FALSE(ring.test_and_set(a));
  EXPECT_FALSE(ring.test_and_set(b));
  EXPECT_TRUE(ring.test_and_set(a));
  EXPECT_TRUE(ring.test_and_set(b));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_TRUE(ring.contains(a));
  EXPECT_FALSE(ring.contains(Uuid{3, 3}));
}

TEST(DedupRingTest, EvictsOldestEntryFirst) {
  DedupRing ring(4);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_FALSE(ring.test_and_set(Uuid{i, i}));
  }
  // A fifth insertion evicts the oldest (1); 2..4 survive.
  EXPECT_FALSE(ring.test_and_set(Uuid{5, 5}));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.contains(Uuid{1, 1}));
  for (std::uint64_t i = 2; i <= 5; ++i) {
    EXPECT_TRUE(ring.contains(Uuid{i, i})) << i;
  }
  // Re-inserting the evicted id is not a duplicate, and evicts 2.
  EXPECT_FALSE(ring.test_and_set(Uuid{1, 1}));
  EXPECT_FALSE(ring.contains(Uuid{2, 2}));
}

TEST(DedupRingTest, ReportsProbeDepthAndDisabledMode) {
  DedupRing ring(16);
  std::uint32_t probes = 0;
  EXPECT_FALSE(ring.test_and_set(Uuid{1, 1}, &probes));
  EXPECT_GE(probes, 1u);
  EXPECT_TRUE(ring.test_and_set(Uuid{1, 1}, &probes));
  EXPECT_GE(probes, 1u);

  DedupRing disabled(0);
  probes = 7;
  EXPECT_FALSE(disabled.test_and_set(Uuid{1, 1}, &probes));
  EXPECT_FALSE(disabled.test_and_set(Uuid{1, 1}, &probes));
  EXPECT_EQ(probes, 0u);
  EXPECT_EQ(disabled.capacity(), 0u);
  EXPECT_EQ(disabled.size(), 0u);
}

TEST(DedupRingTest, MatchesReferenceModelUnderChurn) {
  // Backward-shift deletion and eviction re-probing are the tricky parts;
  // drive the ring with a deterministic id stream (with repeats) and check
  // every answer against a straightforward set + FIFO queue model.
  constexpr std::size_t kCapacity = 64;
  DedupRing ring(kCapacity);
  std::set<Uuid> model;
  std::vector<Uuid> order;  // FIFO, oldest first
  std::uint64_t state = 0x243F6A8885A308D3ULL;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // Small id space so duplicates and re-insertions after eviction are
    // frequent.
    const Uuid id{(state >> 33) % 97, 42};
    const bool dup = ring.test_and_set(id);
    const bool model_dup = model.count(id) > 0;
    ASSERT_EQ(dup, model_dup) << "op " << i;
    if (!model_dup) {
      if (order.size() == kCapacity) {
        model.erase(order.front());
        order.erase(order.begin());
      }
      model.insert(id);
      order.push_back(id);
    }
    ASSERT_EQ(ring.size(), model.size()) << "op " << i;
  }
  for (const auto& id : order) EXPECT_TRUE(ring.contains(id));
}

TEST(LoggingTest, SinkReceivesAboveLevel) {
  std::vector<std::string> captured;
  const auto previous = set_log_sink(
      [&](LogLevel, std::string_view, std::string_view msg) {
        captured.emplace_back(msg);
      });
  const LogLevel previous_level = log_level();
  set_log_level(LogLevel::kInfo);
  P2P_LOG(kDebug, "test") << "dropped";
  P2P_LOG(kWarn, "test") << "kept " << 42;
  set_log_sink(previous);
  set_log_level(previous_level);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "kept 42");
}

}  // namespace
}  // namespace p2p::util
