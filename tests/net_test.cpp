// Unit tests for src/net: addresses, the simulated fabric (latency, loss,
// partitions, firewalls, renames, broadcast) and both transports.
#include <gtest/gtest.h>

#include <atomic>
#include <future>

#include "net/fabric.h"
#include "net/inproc_transport.h"
#include "net/tcp_transport.h"
#include "util/queue.h"

namespace p2p::net {
namespace {

using util::Bytes;
using util::to_bytes;
using util::to_string;

// --- Address -----------------------------------------------------------------

TEST(AddressTest, ParseValid) {
  const auto a = Address::parse("inproc://alice");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->scheme(), "inproc");
  EXPECT_EQ(a->authority(), "alice");
  EXPECT_EQ(a->to_string(), "inproc://alice");
}

TEST(AddressTest, ParseTcpWithPort) {
  const auto a = Address::parse("tcp://127.0.0.1:8080");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->authority(), "127.0.0.1:8080");
}

TEST(AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Address::parse("").has_value());
  EXPECT_FALSE(Address::parse("no-scheme").has_value());
  EXPECT_FALSE(Address::parse("://x").has_value());
}

TEST(AddressTest, EqualityAndHash) {
  const Address a("inproc", "x");
  const Address b("inproc", "x");
  const Address c("tcp", "x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<Address>{}(a), std::hash<Address>{}(b));
}

// --- fabric helpers ------------------------------------------------------------

class Collector {
 public:
  void operator()(Datagram d) { queue_.push(std::move(d)); }
  DatagramHandler handler() {
    return [this](Datagram d) { queue_.push(std::move(d)); };
  }
  std::optional<Datagram> next(int timeout_ms = 2000) {
    return queue_.pop_for(std::chrono::milliseconds(timeout_ms));
  }
  std::size_t pending() { return queue_.size(); }

 private:
  util::BlockingQueue<Datagram> queue_;
};

Datagram make_datagram(const std::string& from, const std::string& to,
                       const std::string& body) {
  return Datagram{Address("inproc", from), Address("inproc", to),
                  to_bytes(body)};
}

// --- NetworkFabric --------------------------------------------------------------

TEST(FabricTest, DeliversToAttachedNode) {
  NetworkFabric fabric;
  Collector rx;
  fabric.attach("bob", rx.handler());
  EXPECT_TRUE(fabric.submit(make_datagram("alice", "bob", "hi")));
  const auto d = rx.next();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(to_string(d->payload), "hi");
  EXPECT_EQ(d->src.authority(), "alice");
}

TEST(FabricTest, UnknownDestinationRejected) {
  NetworkFabric fabric;
  EXPECT_FALSE(fabric.submit(make_datagram("alice", "nobody", "x")));
  EXPECT_EQ(fabric.stats().dropped_unknown, 1u);
}

TEST(FabricTest, DetachStopsDelivery) {
  NetworkFabric fabric;
  Collector rx;
  fabric.attach("bob", rx.handler());
  fabric.detach("bob");
  EXPECT_FALSE(fabric.submit(make_datagram("alice", "bob", "x")));
}

TEST(FabricTest, LatencyDelaysDelivery) {
  NetworkFabric fabric;
  Collector rx;
  fabric.attach("bob", rx.handler());
  fabric.set_default_link({.latency_ms = 60});
  const auto start = std::chrono::steady_clock::now();
  fabric.submit(make_datagram("alice", "bob", "x"));
  ASSERT_TRUE(rx.next().has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(55));
}

TEST(FabricTest, PerLinkOverrideBeatsDefault) {
  NetworkFabric fabric;
  Collector rx;
  fabric.attach("bob", rx.handler());
  fabric.set_default_link({.latency_ms = 200});
  fabric.set_link("alice", "bob", {.latency_ms = 0});
  const auto start = std::chrono::steady_clock::now();
  fabric.submit(make_datagram("alice", "bob", "x"));
  ASSERT_TRUE(rx.next().has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(100));
}

TEST(FabricTest, OrderPreservedAtEqualLatency) {
  NetworkFabric fabric;
  Collector rx;
  fabric.attach("bob", rx.handler());
  for (int i = 0; i < 20; ++i) {
    fabric.submit(make_datagram("alice", "bob", std::to_string(i)));
  }
  for (int i = 0; i < 20; ++i) {
    const auto d = rx.next();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(to_string(d->payload), std::to_string(i));
  }
}

TEST(FabricTest, TotalLossDropsEverythingSilently) {
  NetworkFabric fabric;
  Collector rx;
  fabric.attach("bob", rx.handler());
  fabric.set_default_link({.loss = 1.0});
  EXPECT_TRUE(fabric.submit(make_datagram("alice", "bob", "x")));  // like UDP
  fabric.drain();
  EXPECT_EQ(fabric.stats().dropped_loss, 1u);
  EXPECT_EQ(fabric.stats().delivered, 0u);
}

TEST(FabricTest, PartialLossIsSeeded) {
  NetworkFabric f1(7);
  NetworkFabric f2(7);
  Collector rx1;
  Collector rx2;
  f1.attach("bob", rx1.handler());
  f2.attach("bob", rx2.handler());
  f1.set_default_link({.loss = 0.5});
  f2.set_default_link({.loss = 0.5});
  for (int i = 0; i < 100; ++i) {
    f1.submit(make_datagram("alice", "bob", "x"));
    f2.submit(make_datagram("alice", "bob", "x"));
  }
  f1.drain();
  f2.drain();
  EXPECT_EQ(f1.stats().delivered, f2.stats().delivered);
  EXPECT_GT(f1.stats().delivered, 20u);
  EXPECT_LT(f1.stats().delivered, 80u);
}

TEST(FabricTest, PartitionBlocksBothWays) {
  NetworkFabric fabric;
  Collector a;
  Collector b;
  fabric.attach("alice", a.handler());
  fabric.attach("bob", b.handler());
  fabric.partition("alice", "bob");
  EXPECT_FALSE(fabric.submit(make_datagram("alice", "bob", "x")));
  EXPECT_FALSE(fabric.submit(make_datagram("bob", "alice", "x")));
  fabric.heal("alice", "bob");
  EXPECT_TRUE(fabric.submit(make_datagram("alice", "bob", "x")));
  EXPECT_TRUE(b.next().has_value());
}

TEST(FabricTest, FirewallBlocksUnsolicitedInbound) {
  NetworkFabric fabric;
  Collector inside;
  Collector outside;
  fabric.attach("inside", inside.handler());
  fabric.attach("outside", outside.handler());
  fabric.set_firewalled("inside", true);
  // Unsolicited inbound: dropped.
  EXPECT_FALSE(fabric.submit(make_datagram("outside", "inside", "x")));
  // Outbound from the firewalled node punches a hole...
  EXPECT_TRUE(fabric.submit(make_datagram("inside", "outside", "hello")));
  ASSERT_TRUE(outside.next().has_value());
  // ...after which that peer (and only that peer) can reach back in.
  EXPECT_TRUE(fabric.submit(make_datagram("outside", "inside", "reply")));
  ASSERT_TRUE(inside.next().has_value());
}

TEST(FabricTest, FirewallHoleIsPerSource) {
  NetworkFabric fabric;
  Collector inside;
  Collector outside;
  Collector stranger;
  fabric.attach("inside", inside.handler());
  fabric.attach("outside", outside.handler());
  fabric.attach("stranger", stranger.handler());
  fabric.set_firewalled("inside", true);
  fabric.submit(make_datagram("inside", "outside", "x"));
  EXPECT_TRUE(fabric.submit(make_datagram("outside", "inside", "ok")));
  EXPECT_FALSE(fabric.submit(make_datagram("stranger", "inside", "nope")));
}

TEST(FabricTest, UnfirewallingClosesHoles) {
  NetworkFabric fabric;
  Collector inside;
  Collector outside;
  fabric.attach("inside", inside.handler());
  fabric.attach("outside", outside.handler());
  fabric.set_firewalled("inside", true);
  fabric.submit(make_datagram("inside", "outside", "x"));
  fabric.set_firewalled("inside", false);
  fabric.set_firewalled("inside", true);
  // Hole was flushed when the firewall state was reset.
  EXPECT_FALSE(fabric.submit(make_datagram("outside", "inside", "x")));
}

TEST(FabricTest, RenameMovesHandler) {
  NetworkFabric fabric;
  Collector rx;
  fabric.attach("old", rx.handler());
  EXPECT_TRUE(fabric.rename("old", "new"));
  EXPECT_FALSE(fabric.submit(make_datagram("x", "old", "stale")));
  EXPECT_TRUE(fabric.submit(make_datagram("x", "new", "fresh")));
  const auto d = rx.next();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(to_string(d->payload), "fresh");
}

TEST(FabricTest, RenameRejectsCollisionsAndUnknown) {
  NetworkFabric fabric;
  Collector rx;
  fabric.attach("a", rx.handler());
  fabric.attach("b", rx.handler());
  EXPECT_FALSE(fabric.rename("a", "b"));
  EXPECT_FALSE(fabric.rename("ghost", "c"));
}

TEST(FabricTest, BroadcastReachesAllButSourceAndFirewalled) {
  NetworkFabric fabric;
  Collector a;
  Collector b;
  Collector c;
  Collector fw;
  fabric.attach("a", a.handler());
  fabric.attach("b", b.handler());
  fabric.attach("c", c.handler());
  fabric.attach("fw", fw.handler());
  fabric.set_firewalled("fw", true);
  fabric.broadcast(Address("inproc", "a"), to_bytes("ping"));
  fabric.drain();
  EXPECT_EQ(a.pending(), 0u);   // not echoed to source
  EXPECT_EQ(b.pending(), 1u);
  EXPECT_EQ(c.pending(), 1u);
  EXPECT_EQ(fw.pending(), 0u);  // multicast does not traverse firewalls
}

TEST(FabricTest, StatsCountBytes) {
  NetworkFabric fabric;
  Collector rx;
  fabric.attach("bob", rx.handler());
  fabric.submit(make_datagram("alice", "bob", "12345"));
  fabric.drain();
  EXPECT_EQ(fabric.stats().bytes_delivered, 5u);
  EXPECT_EQ(fabric.stats().submitted, 1u);
  EXPECT_EQ(fabric.stats().delivered, 1u);
}

TEST(FabricTest, HandlerExceptionDoesNotKillFabric) {
  NetworkFabric fabric;
  Collector rx;
  fabric.attach("bomb", [](Datagram) { throw std::runtime_error("boom"); });
  fabric.attach("bob", rx.handler());
  fabric.submit(make_datagram("alice", "bomb", "x"));
  fabric.submit(make_datagram("alice", "bob", "y"));
  EXPECT_TRUE(rx.next().has_value());
}

// --- InProcTransport --------------------------------------------------------------

TEST(InProcTransportTest, SendReceive) {
  NetworkFabric fabric;
  InProcTransport alice(fabric, "alice");
  InProcTransport bob(fabric, "bob");
  Collector rx;
  bob.set_receiver(rx.handler());
  EXPECT_EQ(alice.local_address().to_string(), "inproc://alice");
  EXPECT_TRUE(alice.send(bob.local_address(), to_bytes("hello")));
  const auto d = rx.next();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(to_string(d->payload), "hello");
  EXPECT_EQ(d->src, alice.local_address());
}

TEST(InProcTransportTest, RejectsForeignScheme) {
  NetworkFabric fabric;
  InProcTransport t(fabric, "a");
  EXPECT_FALSE(t.send(Address("tcp", "127.0.0.1:1"), to_bytes("x")));
}

TEST(InProcTransportTest, CloseDetaches) {
  NetworkFabric fabric;
  InProcTransport a(fabric, "a");
  InProcTransport b(fabric, "b");
  b.close();
  EXPECT_FALSE(a.send(Address("inproc", "b"), to_bytes("x")));
  EXPECT_FALSE(b.send(Address("inproc", "a"), to_bytes("x")));
}

TEST(InProcTransportTest, ChangeAddressKeepsReceiving) {
  NetworkFabric fabric;
  InProcTransport mobile(fabric, "home");
  InProcTransport other(fabric, "other");
  Collector rx;
  mobile.set_receiver(rx.handler());
  EXPECT_TRUE(mobile.change_address("roaming"));
  EXPECT_EQ(mobile.local_address().authority(), "roaming");
  EXPECT_FALSE(other.send(Address("inproc", "home"), to_bytes("stale")));
  EXPECT_TRUE(other.send(Address("inproc", "roaming"), to_bytes("fresh")));
  const auto d = rx.next();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(to_string(d->payload), "fresh");
}

TEST(InProcTransportTest, BroadcastViaFabric) {
  NetworkFabric fabric;
  InProcTransport a(fabric, "a");
  InProcTransport b(fabric, "b");
  Collector rx;
  b.set_receiver(rx.handler());
  EXPECT_TRUE(a.broadcast(to_bytes("ping")));
  ASSERT_TRUE(rx.next().has_value());
}

// --- TcpTransport ------------------------------------------------------------------

TEST(TcpTransportTest, SendReceiveLoopback) {
  TcpTransport a;
  TcpTransport b;
  Collector rx;
  b.set_receiver(rx.handler());
  EXPECT_TRUE(a.send(b.local_address(), to_bytes("over tcp")));
  const auto d = rx.next();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(to_string(d->payload), "over tcp");
  EXPECT_EQ(d->src, a.local_address());
}

TEST(TcpTransportTest, BidirectionalAfterFirstContact) {
  TcpTransport a;
  TcpTransport b;
  Collector rx_a;
  Collector rx_b;
  a.set_receiver(rx_a.handler());
  b.set_receiver(rx_b.handler());
  EXPECT_TRUE(a.send(b.local_address(), to_bytes("ping")));
  ASSERT_TRUE(rx_b.next().has_value());
  EXPECT_TRUE(b.send(a.local_address(), to_bytes("pong")));
  ASSERT_TRUE(rx_a.next().has_value());
}

TEST(TcpTransportTest, LargePayload) {
  TcpTransport a;
  TcpTransport b;
  Collector rx;
  b.set_receiver(rx.handler());
  Bytes big(512 * 1024, 0x5a);
  EXPECT_TRUE(a.send(b.local_address(), big));
  const auto d = rx.next(5000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload, big);
}

TEST(TcpTransportTest, ManyMessagesPreserveOrder) {
  TcpTransport a;
  TcpTransport b;
  Collector rx;
  b.set_receiver(rx.handler());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a.send(b.local_address(), to_bytes(std::to_string(i))));
  }
  for (int i = 0; i < 200; ++i) {
    const auto d = rx.next();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(to_string(d->payload), std::to_string(i));
  }
}

TEST(TcpTransportTest, SendToDeadPortFails) {
  TcpTransport a;
  // Port 1 on loopback: nothing listens there.
  EXPECT_FALSE(a.send(Address("tcp", "127.0.0.1:1"), to_bytes("x")));
}

TEST(TcpTransportTest, MalformedAuthorityFails) {
  TcpTransport a;
  EXPECT_FALSE(a.send(Address("tcp", "not-an-address"), to_bytes("x")));
  EXPECT_FALSE(a.send(Address("tcp", "127.0.0.1:99999"), to_bytes("x")));
}

TEST(TcpTransportTest, CloseIsIdempotentAndStopsTraffic) {
  TcpTransport a;
  TcpTransport b;
  b.close();
  b.close();
  EXPECT_FALSE(b.send(a.local_address(), to_bytes("x")));
}

}  // namespace
}  // namespace p2p::net
