// Unit tests for the JXTA core value types: ids, messages, advertisements.
#include <gtest/gtest.h>

#include "jxta/advertisement.h"
#include "jxta/endpoint.h"
#include "jxta/message.h"
#include "jxta/wire.h"

namespace p2p::jxta {
namespace {

// --- typed ids -----------------------------------------------------------

TEST(IdTest, KindsAreDistinctTypesWithDistinctPrefixes) {
  const PeerId peer = PeerId::generate();
  const PipeId pipe = PipeId::generate();
  EXPECT_TRUE(peer.to_string().starts_with("urn:jxta:peer:"));
  EXPECT_TRUE(pipe.to_string().starts_with("urn:jxta:pipe:"));
  EXPECT_TRUE(PeerGroupId::generate().to_string().starts_with(
      "urn:jxta:group:"));
  EXPECT_TRUE(CodatId::generate().to_string().starts_with("urn:jxta:codat:"));
}

TEST(IdTest, RoundTripsThroughText) {
  const PeerId original = PeerId::generate();
  EXPECT_EQ(PeerId::parse(original.to_string()), original);
}

TEST(IdTest, ParseRejectsWrongKind) {
  const PipeId pipe = PipeId::generate();
  EXPECT_THROW(PeerId::parse(pipe.to_string()), util::ParseError);
  EXPECT_THROW(PeerId::parse("garbage"), util::ParseError);
  EXPECT_THROW(PeerId::parse(""), util::ParseError);
}

TEST(IdTest, DeriveIsStableAndKindScoped) {
  EXPECT_EQ(PeerId::derive("x"), PeerId::derive("x"));
  // The same name derives different uuids for different kinds.
  EXPECT_NE(PeerId::derive("x").uuid(), PipeId::derive("x").uuid());
}

TEST(IdTest, NilDetection) {
  EXPECT_TRUE(PeerId{}.is_nil());
  EXPECT_FALSE(PeerId::generate().is_nil());
}

// --- Message ---------------------------------------------------------------

TEST(MessageTest, ElementsAccessors) {
  Message m;
  m.add_string("name", "value");
  m.add_bytes("blob", {1, 2, 3}, "application/x-test");
  EXPECT_EQ(m.elements().size(), 2u);
  EXPECT_EQ(m.get_string("name"), "value");
  EXPECT_EQ(m.get_bytes("blob"), (util::Bytes{1, 2, 3}));
  EXPECT_EQ(m.find("blob")->mime, "application/x-test");
  EXPECT_EQ(m.find("missing"), nullptr);
  EXPECT_FALSE(m.get_string("missing").has_value());
  EXPECT_EQ(m.body_size(), 5u + 3u);
}

TEST(MessageTest, FirstElementWinsOnDuplicateNames) {
  Message m;
  m.add_string("k", "first");
  m.add_string("k", "second");
  EXPECT_EQ(m.get_string("k"), "first");
}

TEST(MessageTest, SerializeRoundTrip) {
  Message m;
  m.add_string("a", "hello");
  m.add_bytes("b", {0, 255, 7});
  const Message back = Message::deserialize(m.serialize());
  EXPECT_EQ(back, m);
  EXPECT_EQ(back.id(), m.id());
}

TEST(MessageTest, DupKeepsElementsFreshensId) {
  Message m;
  m.add_string("k", "v");
  const Message d = m.dup();
  EXPECT_NE(d.id(), m.id());
  EXPECT_EQ(d.elements(), m.elements());
}

TEST(MessageTest, DeserializeRejectsGarbage) {
  EXPECT_THROW(Message::deserialize(util::to_bytes("short")),
               util::ParseError);
}

// --- advertisements -------------------------------------------------------------

PeerAdvertisement sample_peer_adv() {
  PeerAdvertisement adv;
  adv.pid = PeerId::generate();
  adv.gid = PeerGroupId::generate();
  adv.name = "test-peer";
  adv.endpoints = {net::Address("inproc", "test-peer"),
                   net::Address("tcp", "127.0.0.1:9000")};
  adv.is_rendezvous = true;
  adv.is_router = false;
  return adv;
}

PipeAdvertisement sample_pipe_adv() {
  PipeAdvertisement adv;
  adv.pid = PipeId::generate();
  adv.name = "SkiRental";
  adv.type = PipeAdvertisement::Type::kPropagate;
  return adv;
}

PeerGroupAdvertisement sample_group_adv() {
  PeerGroupAdvertisement adv;
  adv.gid = PeerGroupId::generate();
  adv.creator = PeerId::generate();
  adv.name = "PS_SkiRental";
  adv.app = "tps";
  adv.group_impl = "builtin";
  adv.is_rendezvous = true;
  adv.services.emplace(
      std::string(WireService::kWireName),
      WireService::make_service_advertisement(sample_pipe_adv()));
  return adv;
}

TEST(AdvertisementTest, PeerAdvXmlRoundTrip) {
  const PeerAdvertisement adv = sample_peer_adv();
  const PeerAdvertisement back =
      PeerAdvertisement::from_xml(xml::parse(adv.to_xml_text()));
  EXPECT_EQ(back.pid, adv.pid);
  EXPECT_EQ(back.gid, adv.gid);
  EXPECT_EQ(back.name, adv.name);
  EXPECT_EQ(back.endpoints, adv.endpoints);
  EXPECT_EQ(back.is_rendezvous, adv.is_rendezvous);
  EXPECT_EQ(back.is_router, adv.is_router);
}

TEST(AdvertisementTest, PipeAdvXmlRoundTrip) {
  const PipeAdvertisement adv = sample_pipe_adv();
  const PipeAdvertisement back =
      PipeAdvertisement::from_xml(xml::parse(adv.to_xml_text()));
  EXPECT_EQ(back.pid, adv.pid);
  EXPECT_EQ(back.name, adv.name);
  EXPECT_EQ(back.type, adv.type);
}

TEST(AdvertisementTest, GroupAdvXmlRoundTripWithServices) {
  const PeerGroupAdvertisement adv = sample_group_adv();
  const PeerGroupAdvertisement back =
      PeerGroupAdvertisement::from_xml(xml::parse(adv.to_xml_text()));
  EXPECT_EQ(back.gid, adv.gid);
  EXPECT_EQ(back.creator, adv.creator);
  EXPECT_EQ(back.name, adv.name);
  EXPECT_EQ(back.is_rendezvous, adv.is_rendezvous);
  const ServiceAdvertisement* wire = back.service(WireService::kWireName);
  ASSERT_NE(wire, nullptr);
  ASSERT_TRUE(wire->pipe.has_value());
  EXPECT_EQ(wire->pipe->name, "SkiRental");
  EXPECT_EQ(wire->pipe->type, PipeAdvertisement::Type::kPropagate);
}

TEST(AdvertisementTest, ServiceAdvParamsRoundTrip) {
  ServiceAdvertisement svc;
  svc.name = "jxta.service.resolver";
  svc.version = "1.0";
  svc.params = {"p1", "p2", "p3"};
  const ServiceAdvertisement back =
      ServiceAdvertisement::from_xml(xml::parse(svc.to_xml_text()));
  EXPECT_EQ(back.params, svc.params);
  EXPECT_EQ(back.name, svc.name);
}

TEST(AdvertisementTest, RouteAdvXmlRoundTrip) {
  RouteAdvertisement adv;
  adv.dest = PeerId::generate();
  adv.hops = {PeerId::generate(), PeerId::generate()};
  const RouteAdvertisement back =
      RouteAdvertisement::from_xml(xml::parse(adv.to_xml_text()));
  EXPECT_EQ(back.dest, adv.dest);
  EXPECT_EQ(back.hops, adv.hops);
}

TEST(AdvertisementTest, FieldLookupForDiscoveryMatching) {
  const PeerGroupAdvertisement adv = sample_group_adv();
  EXPECT_EQ(adv.field("Name"), "PS_SkiRental");
  EXPECT_EQ(adv.field("GID"), adv.gid.to_string());
  EXPECT_EQ(adv.field("Nonexistent"), "");
}

TEST(AdvertisementTest, IdentityIsStablePerResource) {
  const PeerGroupAdvertisement adv = sample_group_adv();
  PeerGroupAdvertisement same_group = adv;
  same_group.name = "renamed";
  EXPECT_EQ(adv.identity(), same_group.identity());
}

TEST(AdvertisementFactoryTest, DispatchesOnDocType) {
  const PeerAdvertisement adv = sample_peer_adv();
  const auto parsed =
      AdvertisementFactory::instance().parse_text(adv.to_xml_text());
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->doc_type(), std::string(PeerAdvertisement::kDocType));
  const auto* typed = dynamic_cast<const PeerAdvertisement*>(parsed.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->pid, adv.pid);
}

TEST(AdvertisementFactoryTest, UnknownDocTypeThrows) {
  EXPECT_THROW(
      AdvertisementFactory::instance().parse_text("<jxta:Mystery/>"),
      util::ParseError);
}

TEST(AdvertisementFactoryTest, CustomKindRegistrable) {
  AdvertisementFactory::instance().register_parser(
      "x:Custom", [](const xml::Element&) {
        auto adv = std::make_unique<PipeAdvertisement>();
        adv->pid = PipeId::derive("custom");
        adv->name = "custom";
        return adv;
      });
  const auto parsed =
      AdvertisementFactory::instance().parse_text("<x:Custom/>");
  EXPECT_EQ(parsed->field("Name"), "custom");
}

TEST(AdvertisementTest, CloneIsIndependent) {
  const PeerGroupAdvertisement adv = sample_group_adv();
  const auto copy = adv.clone();
  EXPECT_EQ(copy->identity(), adv.identity());
  EXPECT_EQ(copy->to_xml_text(), adv.to_xml_text());
}

TEST(PipeAdvertisementTest, TypeStringsRoundTrip) {
  EXPECT_EQ(PipeAdvertisement::type_from_string(
                PipeAdvertisement::type_to_string(
                    PipeAdvertisement::Type::kUnicast)),
            PipeAdvertisement::Type::kUnicast);
  EXPECT_EQ(PipeAdvertisement::type_from_string(
                PipeAdvertisement::type_to_string(
                    PipeAdvertisement::Type::kPropagate)),
            PipeAdvertisement::Type::kPropagate);
  EXPECT_THROW(PipeAdvertisement::type_from_string("bogus"),
               util::ParseError);
}

// EndpointMessage is the endpoint layer's value type; test it here with the
// other wire formats.
TEST(EndpointMessageTest, SerializeRoundTrip) {
  EndpointMessage m;
  m.src = PeerId::generate();
  m.dst = PeerId::generate();
  m.service = "jxta.resolver.query";
  m.ttl = 3;
  m.payload = {9, 8, 7};
  const EndpointMessage back = EndpointMessage::deserialize(m.serialize());
  EXPECT_EQ(back.src, m.src);
  EXPECT_EQ(back.dst, m.dst);
  EXPECT_EQ(back.service, m.service);
  EXPECT_EQ(back.ttl, m.ttl);
  EXPECT_EQ(back.msg_id, m.msg_id);
  EXPECT_EQ(back.payload, m.payload);
}

}  // namespace
}  // namespace p2p::jxta
