// Time helpers for tests.
//
// Bare std::this_thread::sleep_for in a test body is banned by
// tools/lint.py: a raw sleep hides *why* the test is waiting. settle()
// names the only legitimate use — giving asynchronous activity with no
// observable completion signal (propagation windows, periodic timers) time
// to happen — and gives one place to tune or instrument those waits.
// Whenever the awaited effect IS observable, poll it with wait_until()
// (support/test_net.h) instead.
#pragma once

#include <chrono>
#include <thread>

namespace p2p::testing {

// A deliberate fixed wait for background activity that has no completion
// predicate to poll.
inline void settle(std::chrono::milliseconds duration) {
  std::this_thread::sleep_for(duration);
}

}  // namespace p2p::testing
