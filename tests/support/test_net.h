// Shared helpers for multi-peer tests: a fabric + peers with fast timeouts,
// and a polling wait_until.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "jxta/peer.h"
#include "net/inproc_transport.h"

namespace p2p::testing {

// Polls `predicate` until it holds or `timeout` elapses. Returns its final
// value. Poll interval 5 ms.
inline bool wait_until(const std::function<bool()>& predicate,
                       std::chrono::milliseconds timeout =
                           std::chrono::milliseconds(8000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

// A fabric plus a set of started peers, with test-friendly (fast) timers.
class TestNet {
 public:
  explicit TestNet(std::uint64_t seed = 42) : fabric_(seed) {}

  net::NetworkFabric& fabric() { return fabric_; }

  // Adds a started peer named `name` attached to the fabric as `name`.
  jxta::Peer& add_peer(const std::string& name, bool rendezvous = false,
                       bool router = false,
                       const std::vector<std::string>& seed_rdvs = {}) {
    jxta::PeerConfig config;
    config.name = name;
    config.rendezvous = rendezvous;
    config.router = router;
    config.heartbeat = std::chrono::milliseconds(100);
    config.rdv.lease_ttl = std::chrono::milliseconds(2000);
    for (const auto& seed : seed_rdvs) {
      config.seed_rendezvous.emplace_back("inproc", seed);
    }
    return add_peer(std::move(config));
  }

  // Full-config variant (watchdog, trace capacity, ...); attaches to the
  // fabric under config.name and starts the peer.
  jxta::Peer& add_peer(jxta::PeerConfig config) {
    const std::string name = config.name;
    auto peer = std::make_unique<jxta::Peer>(std::move(config));
    peer->add_transport(std::make_shared<net::InProcTransport>(fabric_, name));
    peer->start();
    peers_.push_back(std::move(peer));
    return *peers_.back();
  }

  // Stops peers in reverse creation order (dependents first).
  ~TestNet() {
    for (auto it = peers_.rbegin(); it != peers_.rend(); ++it) {
      (*it)->stop();
    }
  }

 private:
  net::NetworkFabric fabric_;
  std::vector<std::unique_ptr<jxta::Peer>> peers_;
};

}  // namespace p2p::testing
