// Stress and parameterized sweep tests: many peers, many types, big
// messages, cache overflow semantics, concurrent API use.
#include <gtest/gtest.h>

#include <atomic>

#include "events/news.h"
#include "events/ski_rental.h"
#include "support/test_net.h"
#include "support/timing.h"
#include "tps/tps.h"

namespace p2p {
namespace {

using events::SkiRental;
using testing::TestNet;
using testing::wait_until;

tps::TpsConfig fast_config() {
  tps::TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(300);
  config.finder_period = std::chrono::milliseconds(150);
  return config;
}

// --- population sweep -------------------------------------------------------------

class SubscriberCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(SubscriberCountSweep, EverySubscriberGetsEveryEvent) {
  const int n_subs = GetParam();
  TestNet net;
  std::vector<std::unique_ptr<tps::TpsInterface<SkiRental>>> subs;
  auto counts = std::make_shared<std::vector<std::atomic<int>>>(
      static_cast<std::size_t>(n_subs));
  for (int i = 0; i < n_subs; ++i) {
    jxta::Peer& peer = net.add_peer("sub" + std::to_string(i));
    tps::TpsEngine<SkiRental> engine(peer, fast_config());
    subs.push_back(std::make_unique<tps::TpsInterface<SkiRental>>(
        engine.new_interface()));
    // Capture the shared_ptr, not a raw slot pointer: `counts` is declared
    // after `subs`, so it is destroyed first while late deliveries may still
    // be in flight.
    subs.back()->subscribe(
        tps::make_callback<SkiRental>([counts, i](const SkiRental&) {
          ++(*counts)[static_cast<std::size_t>(i)];
        }),
        tps::ignore_exceptions<SkiRental>());
  }
  jxta::Peer& pub_peer = net.add_peer("pub");
  tps::TpsEngine<SkiRental> pub_engine(pub_peer, fast_config());
  auto pub = pub_engine.new_interface();
  constexpr int kEvents = 20;
  for (int i = 0; i < kEvents; ++i) {
    pub.publish(SkiRental("S", static_cast<float>(i), "B", 1));
  }
  EXPECT_TRUE(wait_until([&] {
    for (const auto& c : *counts) {
      if (c < kEvents) return false;
    }
    return true;
  }));
  p2p::testing::settle(std::chrono::milliseconds(200));
  for (const auto& c : *counts) EXPECT_EQ(c, kEvents);  // exactly once
}

INSTANTIATE_TEST_SUITE_P(Populations, SubscriberCountSweep,
                         ::testing::Values(1, 2, 4, 8));

// --- message size sweep -------------------------------------------------------------

class MessageSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MessageSizeSweep, PayloadSurvivesTransitIntact) {
  const auto size = static_cast<std::size_t>(GetParam());
  TestNet net;
  jxta::Peer& sub_peer = net.add_peer("sub");
  jxta::Peer& pub_peer = net.add_peer("pub");
  tps::TpsEngine<SkiRental> sub_engine(sub_peer, fast_config());
  auto sub = sub_engine.new_interface();
  std::mutex mu;
  std::optional<SkiRental> got;
  sub.subscribe(tps::make_callback<SkiRental>([&](const SkiRental& e) {
                  const std::lock_guard lock(mu);
                  got = e;
                }),
                tps::ignore_exceptions<SkiRental>());
  tps::TpsEngine<SkiRental> pub_engine(pub_peer, fast_config());
  auto pub = pub_engine.new_interface();
  const SkiRental big(std::string(size, 'S'), 1.5f, std::string(size, 'B'),
                      9.0f);
  pub.publish(big);
  ASSERT_TRUE(wait_until([&] {
    const std::lock_guard lock(mu);
    return got.has_value();
  }));
  const std::lock_guard lock(mu);
  EXPECT_EQ(*got, big);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MessageSizeSweep,
                         ::testing::Values(0, 1, 1910, 65536, 1 << 20));

// --- many types on one peer ------------------------------------------------------------

TEST(ManyTypesTest, IndependentTopicsDoNotCross) {
  using events::News;
  using events::SkiNews;
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");

  tps::TpsEngine<SkiRental> rental_engine_a(alice, fast_config());
  auto rental_sub = rental_engine_a.new_interface();
  std::atomic<int> rentals{0};
  rental_sub.subscribe(
      tps::make_callback<SkiRental>([&](const SkiRental&) { ++rentals; }),
      tps::ignore_exceptions<SkiRental>());

  serial::register_event_with_ancestors<SkiNews>();
  tps::TpsEngine<News> news_engine_a(alice, fast_config());
  auto news_sub = news_engine_a.new_interface();
  std::atomic<int> news{0};
  news_sub.subscribe(
      tps::make_callback<News>([&](const News&) { ++news; }),
      tps::ignore_exceptions<News>());

  tps::TpsEngine<SkiRental> rental_engine_b(bob, fast_config());
  auto rental_pub = rental_engine_b.new_interface();
  tps::TpsEngine<News> news_engine_b(bob, fast_config());
  auto news_pub = news_engine_b.new_interface();

  for (int i = 0; i < 5; ++i) {
    rental_pub.publish(SkiRental("S", 1, "B", 1));
    news_pub.publish(News("h", "b"));
  }
  EXPECT_TRUE(wait_until([&] { return rentals == 5 && news == 5; }));
  p2p::testing::settle(std::chrono::milliseconds(200));
  EXPECT_EQ(rentals, 5);
  EXPECT_EQ(news, 5);
}

// --- dedup cache overflow semantics ----------------------------------------------------

TEST(DedupOverflowTest, TinyCacheStillSuppressesAdjacentDuplicates) {
  // The dedup memory is bounded; copies of one event arrive close together
  // (they are sent back-to-back on the different wires), so even a small
  // cache suppresses them. Force the 2-advertisement world and a cache of
  // 4 entries, then check exactly-once delivery still holds for a burst
  // much longer than the cache.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  net.fabric().partition("alice", "bob");
  tps::TpsConfig config = fast_config();
  config.adv_search_timeout = std::chrono::milliseconds(1);
  config.dedup_cache_size = 4;
  tps::TpsEngine<SkiRental> engine_a(alice, config);
  tps::TpsEngine<SkiRental> engine_b(bob, config);
  auto sub = engine_a.new_interface();
  auto pub = engine_b.new_interface();
  net.fabric().heal("alice", "bob");
  ASSERT_TRUE(wait_until([&] {
    return sub.advertisement_count() == 2 && pub.advertisement_count() == 2;
  }));
  std::atomic<int> got{0};
  sub.subscribe(
      tps::make_callback<SkiRental>([&](const SkiRental&) { ++got; }),
      tps::ignore_exceptions<SkiRental>());
  constexpr int kEvents = 50;
  for (int i = 0; i < kEvents; ++i) {
    pub.publish(SkiRental("S", static_cast<float>(i), "B", 1));
  }
  ASSERT_TRUE(wait_until([&] { return got >= kEvents; }));
  p2p::testing::settle(std::chrono::milliseconds(300));
  EXPECT_EQ(got, kEvents);
}

// --- concurrent API use -------------------------------------------------------------------

TEST(ConcurrencyTest, ParallelPublishersOnOneInterface) {
  TestNet net;
  jxta::Peer& sub_peer = net.add_peer("sub");
  jxta::Peer& pub_peer = net.add_peer("pub");
  tps::TpsEngine<SkiRental> sub_engine(sub_peer, fast_config());
  auto sub = sub_engine.new_interface();
  std::atomic<int> got{0};
  sub.subscribe(
      tps::make_callback<SkiRental>([&](const SkiRental&) { ++got; }),
      tps::ignore_exceptions<SkiRental>());
  tps::TpsEngine<SkiRental> pub_engine(pub_peer, fast_config());
  auto pub = pub_engine.new_interface();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pub] {
      for (int i = 0; i < kPerThread; ++i) {
        pub.publish(SkiRental("S", static_cast<float>(i), "B", 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(wait_until([&] { return got == kThreads * kPerThread; }));
  EXPECT_EQ(pub.stats().published,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ConcurrencyTest, SubscribeUnsubscribeWhileTrafficFlows) {
  TestNet net;
  jxta::Peer& sub_peer = net.add_peer("sub");
  jxta::Peer& pub_peer = net.add_peer("pub");
  tps::TpsEngine<SkiRental> sub_engine(sub_peer, fast_config());
  auto sub = sub_engine.new_interface();
  tps::TpsEngine<SkiRental> pub_engine(pub_peer, fast_config());
  auto pub = pub_engine.new_interface();

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int i = 0; !stop; ++i) {
      pub.publish(SkiRental("S", static_cast<float>(i), "B", 1));
      p2p::testing::settle(std::chrono::milliseconds(1));
    }
  });
  // Churn subscriptions concurrently with delivery.
  std::atomic<int> got{0};
  for (int round = 0; round < 30; ++round) {
    auto cb = tps::make_callback<SkiRental>(
        [&](const SkiRental&) { ++got; });
    auto eh = tps::ignore_exceptions<SkiRental>();
    sub.subscribe(cb, eh);
    p2p::testing::settle(std::chrono::milliseconds(5));
    sub.unsubscribe(cb, eh);
  }
  stop = true;
  publisher.join();
  SUCCEED();  // the invariant is "no crash, no deadlock, no exception"
}

TEST(ConcurrencyTest, ManyEnginesCreatedAndDestroyedConcurrently) {
  TestNet net;
  jxta::Peer& peer = net.add_peer("peer");
  std::vector<std::thread> threads;
  std::atomic<int> completed{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        tps::TpsConfig config = fast_config();
        config.adv_search_timeout = std::chrono::milliseconds(50);
        tps::TpsEngine<SkiRental> engine(peer, config);
        auto tps_if = engine.new_interface();
        tps_if.publish(SkiRental("S", 1, "B", 1));
        ++completed;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed, 20);
}

// --- churn under load ---------------------------------------------------------------------

TEST(FabricChurnTest, PeersDetachingMidTrafficDoNotWedgeOthers) {
  TestNet net;
  jxta::Peer& sub_peer = net.add_peer("sub");
  jxta::Peer& pub_peer = net.add_peer("pub");
  tps::TpsEngine<SkiRental> sub_engine(sub_peer, fast_config());
  auto sub = sub_engine.new_interface();
  std::atomic<int> got{0};
  sub.subscribe(
      tps::make_callback<SkiRental>([&](const SkiRental&) { ++got; }),
      tps::ignore_exceptions<SkiRental>());
  tps::TpsEngine<SkiRental> pub_engine(pub_peer, fast_config());
  auto pub = pub_engine.new_interface();

  // Bystanders come and go while events flow.
  for (int round = 0; round < 3; ++round) {
    auto transient = std::make_unique<jxta::Peer>(jxta::PeerConfig{
        .name = "transient",
        .heartbeat = std::chrono::milliseconds(50)});
    transient->add_transport(std::make_shared<net::InProcTransport>(
        net.fabric(), "transient" + std::to_string(round)));
    transient->start();
    for (int i = 0; i < 10; ++i) {
      pub.publish(SkiRental("S", static_cast<float>(i), "B", 1));
    }
    transient->stop();
  }
  EXPECT_TRUE(wait_until([&] { return got == 30; }));
}

}  // namespace
}  // namespace p2p
