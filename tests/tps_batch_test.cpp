// Tests for the fast publish pipeline (batching + encode-once cache +
// async sends with backpressure) and the v2 API surface around it:
// TpsConfig::Builder, PublishTicket, RAII Subscription handles.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>

#include "events/news.h"
#include "events/ski_rental.h"
#include "support/test_net.h"
#include "support/timing.h"
#include "tps/batch.h"
#include "tps/encode_cache.h"
#include "tps/tps.h"

namespace p2p::tps {
namespace {

using events::News;
using events::SkiNews;
using events::SkiRental;
using p2p::testing::TestNet;
using p2p::testing::wait_until;
using util::Bytes;

TpsConfig::Builder fast_builder() {
  return TpsConfig::Builder()
      .adv_search_timeout(std::chrono::milliseconds(300))
      .finder_period(std::chrono::milliseconds(150));
}

std::shared_ptr<std::atomic<int>> make_counter() {
  return std::make_shared<std::atomic<int>>(0);
}

// --- frame codec -------------------------------------------------------------

TEST(TpsBatchFrameTest, RoundTripIncludingEmptyPayloads) {
  std::vector<BatchItem> items;
  for (int i = 0; i < 5; ++i) {
    Bytes payload;
    for (int j = 0; j < i; ++j) payload.push_back(static_cast<uint8_t>(j));
    items.push_back(BatchItem{
        util::Uuid{static_cast<std::uint64_t>(i), 99},
        std::make_shared<const Bytes>(std::move(payload))});
  }
  const auto decoded = decode_batch_frame(encode_batch_frame(items));
  ASSERT_EQ(decoded.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(decoded[i].id, items[i].id);
    EXPECT_EQ(decoded[i].payload, *items[i].payload);
  }
}

TEST(TpsBatchFrameTest, EmptyFrameRoundTrips) {
  const Bytes frame = encode_batch_frame({});
  EXPECT_TRUE(decode_batch_frame(frame).empty());
}

TEST(TpsBatchFrameTest, TruncatedFrameThrows) {
  const std::vector<BatchItem> items = {
      {util::Uuid{1, 2}, std::make_shared<const Bytes>(Bytes{0xAA, 0xBB})}};
  Bytes frame = encode_batch_frame(items);
  frame.resize(frame.size() - 1);
  EXPECT_THROW((void)decode_batch_frame(frame), util::ParseError);
}

// --- TpsConfig::Builder ------------------------------------------------------

TEST(TpsBuilderTest, BuildsValidatedConfig) {
  const TpsConfig config =
      TpsConfig::Builder()
          .adv_search_timeout(std::chrono::milliseconds(250))
          .finder_period(std::chrono::milliseconds(100))
          .dedup_cache(64)
          .batching(32, std::chrono::microseconds(500))
          .send_queue_capacity(128)
          .encode_cache(16)
          .no_history()
          .no_ancestor_advs()
          .build();
  EXPECT_EQ(config.adv_search_timeout, std::chrono::milliseconds(250));
  EXPECT_EQ(config.finder_period, std::chrono::milliseconds(100));
  EXPECT_EQ(config.dedup_cache_size, 64u);
  EXPECT_TRUE(config.batching);
  EXPECT_EQ(config.batch_max_events, 32u);
  EXPECT_EQ(config.batch_max_age, std::chrono::microseconds(500));
  EXPECT_EQ(config.send_queue_capacity, 128u);
  EXPECT_EQ(config.encode_cache_size, 16u);
  EXPECT_FALSE(config.record_history);
  EXPECT_FALSE(config.create_ancestor_advs);
}

TEST(TpsBuilderTest, RejectsOutOfBoundsKnobs) {
  EXPECT_THROW((void)TpsConfig::Builder()
                   .adv_search_timeout(std::chrono::milliseconds(-1))
                   .build(),
               PsException);
  EXPECT_THROW((void)TpsConfig::Builder()
                   .finder_period(std::chrono::milliseconds(0))
                   .build(),
               PsException);
  EXPECT_THROW((void)TpsConfig::Builder().adv_lifetime_ms(0).build(),
               PsException);
  EXPECT_THROW((void)TpsConfig::Builder()
                   .batching(0, std::chrono::microseconds(0))
                   .build(),
               PsException);
  EXPECT_THROW((void)TpsConfig::Builder()
                   .batching(4, std::chrono::microseconds(-1))
                   .build(),
               PsException);
  EXPECT_THROW((void)TpsConfig::Builder().send_queue_capacity(0).build(),
               PsException);
}

// --- encode-once cache -------------------------------------------------------

TEST(EncodeCacheTest, IdentityHitsShareOneBufferAndLruEvicts) {
  serial::TypeRegistry registry;
  serial::register_event_with_ancestors<SkiRental>(registry);
  EncodeCache cache(2, obs::Counter());

  const auto e1 = std::make_shared<const SkiRental>("a", 1.0f, "x", 1.0f);
  const auto e2 = std::make_shared<const SkiRental>("b", 2.0f, "y", 2.0f);
  const auto e3 = std::make_shared<const SkiRental>("c", 3.0f, "z", 3.0f);

  const auto first = cache.encode(registry, xml_codec(), e1);
  const auto again = cache.encode(registry, xml_codec(), e1);
  // A hit returns the very same buffer — every wire shares these bytes.
  EXPECT_EQ(first.get(), again.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(*first, registry.encode_tagged(*e1));

  // Two more distinct events push e1 out (capacity 2, LRU).
  (void)cache.encode(registry, xml_codec(), e2);
  (void)cache.encode(registry, xml_codec(), e3);
  const auto after_evict = cache.encode(registry, xml_codec(), e1);
  EXPECT_NE(after_evict.get(), first.get());  // re-encoded, not cached
  EXPECT_EQ(*after_evict, *first);            // but byte-identical
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(EncodeCacheTest, ZeroCapacityDisablesCaching) {
  serial::TypeRegistry registry;
  serial::register_event_with_ancestors<SkiRental>(registry);
  EncodeCache cache(0, obs::Counter());
  const auto e = std::make_shared<const SkiRental>("a", 1.0f, "x", 1.0f);
  EXPECT_NE(cache.encode(registry, xml_codec(), e).get(), cache.encode(registry, xml_codec(), e).get());
  EXPECT_EQ(cache.hits(), 0u);
}

// --- batched delivery end to end ---------------------------------------------

TEST(TpsBatchTest, BatchedPublishDeliversEveryEventExactlyOnce) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");

  TpsEngine<SkiRental> sub_engine(alice, fast_builder().build());
  auto sub = sub_engine.new_interface();
  const auto count = make_counter();
  auto handle = sub.subscribe([count](const SkiRental&) { ++*count; });

  // The publisher batches aggressively: a 50 ms linger lets the 20
  // back-to-back publishes coalesce into a few frames.
  TpsEngine<SkiRental> pub_engine(
      bob, fast_builder()
               .adv_search_timeout(std::chrono::milliseconds(3000))
               .batching(8, std::chrono::milliseconds(50))
               .build());
  auto pub = pub_engine.new_interface();
  ASSERT_EQ(pub.advertisement_count(), 1u);  // adopted alice's, no second

  for (int i = 0; i < 20; ++i) {
    const auto ticket =
        pub.try_publish(SkiRental("shop", 10.0f + i, "brand", 1.0f));
    ASSERT_EQ(ticket.outcome, PublishOutcome::kEnqueued) << i;
  }
  pub.flush();

  const auto stats = pub.stats();
  EXPECT_EQ(stats.published, 20u);
  // One advertisement bound -> exactly one per-event transmission each.
  EXPECT_EQ(stats.wire_sends, 20u);
  // Coalescing happened: at least one real multi-event frame went out.
  EXPECT_GE(stats.batches_sent, 1u);
  EXPECT_GE(stats.batched_events, 2u);
  EXPECT_LE(stats.batched_events, 20u);

  EXPECT_TRUE(wait_until([&] { return count->load() == 20; }));
  EXPECT_EQ(sub.stats().received_unique, 20u);
  EXPECT_EQ(sub.stats().decode_failures, 0u);
  // And nothing arrives twice: late duplicates would have no completion
  // signal to poll, so give propagation a moment and re-check.
  p2p::testing::settle(std::chrono::milliseconds(100));
  EXPECT_EQ(count->load(), 20);
  EXPECT_EQ(sub.stats().received_unique, 20u);
}

TEST(TpsBatchTest, LegacyAndBatchedPublishersInteroperate) {
  // "Old single-event frames still accepted": a batching subscriber
  // session decodes v1 frames from a non-batching publisher, and a
  // default-config subscriber decodes v2 batch frames.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");

  TpsEngine<SkiRental> sub_engine(alice, fast_builder().build());
  auto sub = sub_engine.new_interface();
  const auto count = make_counter();
  auto handle = sub.subscribe([count](const SkiRental&) { ++*count; });

  const auto patient = fast_builder().adv_search_timeout(
      std::chrono::milliseconds(3000));
  TpsEngine<SkiRental> legacy_engine(bob, patient.build());
  auto legacy = legacy_engine.new_interface();
  TpsEngine<SkiRental> fast_engine(
      bob, fast_builder()
               .adv_search_timeout(std::chrono::milliseconds(3000))
               .batching(8, std::chrono::milliseconds(50))
               .build());
  auto fast = fast_engine.new_interface();

  for (int i = 0; i < 5; ++i) {
    legacy.publish(SkiRental("legacy", 1.0f * i, "brand", 1.0f));
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        fast.try_publish(SkiRental("fast", 1.0f * i, "brand", 1.0f)).ok());
  }
  fast.flush();

  EXPECT_TRUE(wait_until([&] { return count->load() == 15; }));
  EXPECT_EQ(sub.stats().decode_failures, 0u);
}

TEST(TpsBatchTest, EncodeCacheSpansHierarchyFanOutAndRepeats) {
  // A SkiNews publication travels the SkiNews, SportsNews and News wires
  // off one shared encoding; re-publishing the same immutable object hits
  // the cache. The News subscriber must decode every copy's bytes.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");

  TpsEngine<News> sub_engine(alice, fast_builder().build());
  auto sub = sub_engine.new_interface();
  const auto count = make_counter();
  const auto last_resort = std::make_shared<std::string>();
  auto handle = sub.subscribe([count, last_resort](const News& news) {
    if (const auto* ski = dynamic_cast<const SkiNews*>(&news)) {
      *last_resort = ski->resort();
    }
    ++*count;
  });

  TpsEngine<SkiNews> pub_engine(
      bob, fast_builder()
               .adv_search_timeout(std::chrono::milliseconds(500))
               .batching(8, std::chrono::milliseconds(10))
               .encode_cache(16)
               .build());
  auto pub = pub_engine.new_interface();

  const auto story =
      std::make_shared<const SkiNews>("headline", "body", "Verbier");
  ASSERT_TRUE(pub.try_publish(story).ok());
  pub.flush();
  ASSERT_TRUE(pub.try_publish(story).ok());  // same pointer: cache hit
  pub.flush();

  EXPECT_TRUE(wait_until([&] { return count->load() == 2; }));
  EXPECT_EQ(*last_resort, "Verbier");
  EXPECT_EQ(pub.stats().encode_cache_hits, 1u);
  // Hierarchy fan-out reached the ancestor wires too: more transmissions
  // than events (SkiNews + SportsNews + News wires), yet the subscriber
  // deduplicated down to exactly-once.
  EXPECT_GT(pub.stats().wire_sends, 2u);
  EXPECT_EQ(sub.stats().received_unique, 2u);
  EXPECT_EQ(sub.stats().decode_failures, 0u);
}

// --- backpressure ------------------------------------------------------------

TEST(TpsBatchTest, BackpressureDropsAreAccountedAndTicketed) {
  // A single isolated peer publishing SkiNews: the sender thread stalls
  // for adv_search_timeout per missing *ancestor* advertisement
  // (SportsNews, then News), so a burst into the capacity-4 queue must
  // shed deterministically.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiNews> engine(
      alice, fast_builder()
                 .batching(1, std::chrono::microseconds(0))
                 .send_queue_capacity(4)
                 .build());
  auto tps = engine.new_interface();
  const auto count = make_counter();
  auto handle = tps.subscribe([count](const SkiNews&) { ++*count; });

  // First publication: the worker picks it up and blocks creating the
  // ancestor advertisements (~2 x 300 ms).
  ASSERT_EQ(tps.try_publish(SkiNews("h", "b", "r")).outcome,
            PublishOutcome::kEnqueued);
  ASSERT_TRUE(wait_until([&] { return tps.send_queue_depth() == 0; }));

  int enqueued = 0;
  int dropped = 0;
  for (int i = 0; i < 20; ++i) {
    const auto ticket = tps.try_publish(SkiNews("h", "b", "r"));
    if (ticket.outcome == PublishOutcome::kEnqueued) ++enqueued;
    if (ticket.outcome == PublishOutcome::kDroppedQueueFull) {
      EXPECT_FALSE(ticket.ok());
      EXPECT_TRUE(ticket.dropped());
      EXPECT_FALSE(ticket.rejected());
      ++dropped;
    }
  }
  EXPECT_EQ(enqueued, 4);
  EXPECT_EQ(dropped, 16);

  tps.flush();
  const auto stats = tps.stats();
  EXPECT_EQ(stats.publish_drops, 16u);
  EXPECT_EQ(stats.send_queue_hwm, 4u);
  EXPECT_EQ(stats.published, 5u);  // drops are not "published"
  // Every accepted event (1 + 4) was delivered locally, exactly once.
  EXPECT_EQ(count->load(), 5);
}

// --- flush / drain-on-close --------------------------------------------------

TEST(TpsBatchTest, FlushCutsTheLingerAndCloseDrainsTheQueue) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  const auto count = make_counter();
  {
    // A half-second linger would stall these 10 events; flush() must cut
    // it short and hand them to the wire before returning.
    TpsEngine<SkiRental> engine(
        alice, fast_builder()
                   .batching(64, std::chrono::milliseconds(500))
                   .build());
    auto tps = engine.new_interface();
    auto handle = tps.subscribe([count](const SkiRental&) { ++*count; });
    // The handle would otherwise be destroyed (and unsubscribe) before the
    // interface drains at scope exit below.
    handle.detach();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(tps.try_publish(SkiRental("s", 1.0f, "b", 1.0f)).ok());
    }
    tps.flush();
    // Local delivery is synchronous with the send, so after flush() the
    // events are already in — no polling wait.
    EXPECT_EQ(count->load(), 10);
    EXPECT_EQ(tps.stats().batches_sent, 1u);
    EXPECT_EQ(tps.stats().batched_events, 10u);

    // Publications still queued when the session closes are drained, not
    // dropped: shutdown() flushes before tearing the bindings down.
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(tps.try_publish(SkiRental("s", 2.0f, "b", 1.0f)).ok());
    }
  }  // interface destroyed -> session shutdown -> drain
  EXPECT_EQ(count->load(), 15);
}

// --- PublishTicket -----------------------------------------------------------

TEST(TpsTicketTest, OutcomesAsValuesInsteadOfExceptions) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_builder().build());
  auto tps = engine.new_interface();

  const auto sent = tps.try_publish(SkiRental("s", 1.0f, "b", 1.0f));
  EXPECT_EQ(sent.outcome, PublishOutcome::kSent);
  EXPECT_TRUE(sent.ok());
  EXPECT_EQ(sent.wire_sends, 1u);
  EXPECT_NO_THROW(sent.raise());

  const auto null_ticket = tps.try_publish(std::shared_ptr<const SkiRental>());
  EXPECT_EQ(null_ticket.outcome, PublishOutcome::kRejectedNullEvent);
  EXPECT_TRUE(null_ticket.rejected());
  EXPECT_THROW(null_ticket.raise(), PsException);
  EXPECT_EQ(to_string(null_ticket.outcome), "rejected-null-event");

  // The v1 surface still throws for the same condition.
  EXPECT_THROW(tps.publish(std::shared_ptr<const SkiRental>()), PsException);
}

// --- RAII Subscription handles -----------------------------------------------

TEST(SubscriptionTest, DroppingTheHandleUnsubscribes) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_builder().build());
  auto tps = engine.new_interface();

  const auto keeper = make_counter();
  const auto scoped = make_counter();
  auto keeper_handle =
      tps.subscribe([keeper](const SkiRental&) { ++*keeper; });
  {
    auto handle = tps.subscribe([scoped](const SkiRental&) { ++*scoped; });
    EXPECT_TRUE(handle.active());
    tps.publish(SkiRental("s", 1.0f, "b", 1.0f));
    EXPECT_TRUE(wait_until([&] { return keeper->load() == 1; }));
    EXPECT_EQ(scoped->load(), 1);
  }
  // The scoped handle is gone; only the keeper still receives.
  tps.publish(SkiRental("s", 2.0f, "b", 1.0f));
  EXPECT_TRUE(wait_until([&] { return keeper->load() == 2; }));
  EXPECT_EQ(scoped->load(), 1);
}

TEST(SubscriptionTest, CancelIsIdempotentAndMoveTransfersOwnership) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_builder().build());
  auto tps = engine.new_interface();

  const auto count = make_counter();
  auto handle = tps.subscribe([count](const SkiRental&) { ++*count; });
  Subscription moved = std::move(handle);
  EXPECT_FALSE(handle.active());  // NOLINT(bugprone-use-after-move): spec'd
  EXPECT_TRUE(moved.active());

  tps.publish(SkiRental("s", 1.0f, "b", 1.0f));
  EXPECT_TRUE(wait_until([&] { return count->load() == 1; }));

  moved.cancel();
  EXPECT_FALSE(moved.active());
  moved.cancel();  // idempotent
  tps.publish(SkiRental("s", 2.0f, "b", 1.0f));
  // No second delivery: the only subscriber was cancelled. Publish once
  // more to a fresh subscriber to bound the wait observably.
  const auto probe = make_counter();
  auto probe_handle = tps.subscribe([probe](const SkiRental&) { ++*probe; });
  tps.publish(SkiRental("s", 3.0f, "b", 1.0f));
  EXPECT_TRUE(wait_until([&] { return probe->load() == 1; }));
  EXPECT_EQ(count->load(), 1);
}

TEST(SubscriptionTest, DetachKeepsTheSubscriptionForSessionLifetime) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  TpsEngine<SkiRental> engine(alice, fast_builder().build());
  auto tps = engine.new_interface();

  const auto count = make_counter();
  {
    auto handle = tps.subscribe([count](const SkiRental&) { ++*count; });
    handle.detach();
    EXPECT_FALSE(handle.active());
  }
  tps.publish(SkiRental("s", 1.0f, "b", 1.0f));
  EXPECT_TRUE(wait_until([&] { return count->load() == 1; }));
}

TEST(SubscriptionTest, HandleOutlivingSessionIsHarmless) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  Subscription orphan;
  {
    TpsEngine<SkiRental> engine(alice, fast_builder().build());
    auto tps = engine.new_interface();
    const auto count = make_counter();
    orphan = tps.subscribe([count](const SkiRental&) { ++*count; });
    EXPECT_TRUE(orphan.active());
  }
  EXPECT_FALSE(orphan.active());
  orphan.cancel();  // no session left; must not crash or throw
}

}  // namespace
}  // namespace p2p::tps
