// Tests for the stall watchdog (src/obs/watchdog.h) and the flight
// recorder it snapshots on alarm.
//
// The two scenarios the ISSUE demands are here end-to-end: a delivery
// callback that blocks its executor worker raises exactly one queue-stall
// alarm (with a non-empty flight snapshot), and a sleeping event-loop
// thread raises exactly one loop-stall alarm. Both alarms are
// edge-triggered: a stall that persists across many check periods still
// reports once, and the latch re-arms after recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "events/ski_rental.h"
#include "net/event_loop.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"  // now_us()
#include "obs/watchdog.h"
#include "support/test_net.h"
#include "support/timing.h"
#include "tps/tps.h"
#include "util/thread_annotations.h"

namespace p2p::obs {
namespace {

using events::SkiRental;
using p2p::testing::settle;
using p2p::testing::TestNet;
using p2p::testing::wait_until;

// A gate a test callback can block on until the test opens it.
struct Latch {
  util::Mutex mu{"test-latch"};
  util::CondVar cv;
  bool open GUARDED_BY(mu) = false;

  void release() {
    const util::MutexLock lock(mu);
    open = true;
    cv.notify_all();
  }
  void wait() {
    const util::MutexLock lock(mu);
    while (!open) cv.wait(mu);
  }
};

// Counts alarms and remembers what the last report looked like. The hook
// runs on whatever thread called check, so everything is atomic.
struct AlarmProbe {
  std::atomic<int> count{0};
  std::atomic<bool> flight_nonempty{false};
  std::atomic<bool> kind_matched{false};
  std::string expected_kind;

  Watchdog::AlarmHook hook() {
    return [this](const StallReport& report) {
      ++count;
      if (!report.flight.empty()) flight_nonempty = true;
      if (report.kind == expected_kind) kind_matched = true;
    };
  }
};

// --- flight recorder ---------------------------------------------------------

TEST(FlightTest, RecordedEntriesAppearInSnapshot) {
  constexpr std::uint64_t kMarker = 0xF11E57A3u;
  flight::record(FlightComponent::kTps, FlightKind::kEnqueue, kMarker);
  const std::vector<FlightRecord> snap = flight::snapshot();
  bool found = false;
  for (const FlightRecord& r : snap) {
    if (r.component == FlightComponent::kTps &&
        r.kind == FlightKind::kEnqueue && r.arg == kMarker) {
      found = true;
      EXPECT_GT(r.t_us, 0);
      EXPECT_GT(r.thread, 0u);
    }
  }
  EXPECT_TRUE(found);

  // clear() wipes every ring: the marker is gone from the next snapshot.
  flight::clear();
  for (const FlightRecord& r : flight::snapshot()) {
    EXPECT_FALSE(r.component == FlightComponent::kTps &&
                 r.kind == FlightKind::kEnqueue && r.arg == kMarker);
  }
}

TEST(FlightTest, SnapshotIsTimeOrderedAcrossThreads) {
  flight::clear();
  // Exiting threads recycle (and reset) their rings, so every writer holds
  // its ring until all four have finished recording.
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&done] {
      for (int i = 0; i < 100; ++i) {
        flight::record(FlightComponent::kNet, FlightKind::kLoopWake,
                       static_cast<std::uint64_t>(i));
      }
      ++done;
      while (done.load() < 4) std::this_thread::yield();
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = flight::snapshot();
  EXPECT_GE(snap.size(), 400u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i - 1].t_us, snap[i].t_us);
  }
}

TEST(FlightTest, DisableStopsRecording) {
  flight::set_enabled(false);
  flight::clear();
  flight::record(FlightComponent::kJxta, FlightKind::kConnect, 0xD15AB1Eu);
  for (const FlightRecord& r : flight::snapshot()) {
    EXPECT_NE(r.arg, 0xD15AB1Eu);
  }
  flight::set_enabled(true);
  flight::record(FlightComponent::kJxta, FlightKind::kConnect, 0xD15AB1Eu);
  bool found = false;
  for (const FlightRecord& r : flight::snapshot()) {
    found = found || r.arg == 0xD15AB1Eu;
  }
  EXPECT_TRUE(found);
}

TEST(FlightTest, RingOverwritesOldestBeyondCapacity) {
  flight::clear();
  const auto total = static_cast<std::uint64_t>(flight::kRingSlots) + 100;
  for (std::uint64_t i = 0; i < total; ++i) {
    flight::record(FlightComponent::kDelivery, FlightKind::kDeliverEnd, i);
  }
  std::uint64_t mine = 0;
  std::uint64_t min_arg = total;
  for (const FlightRecord& r : flight::snapshot()) {
    if (r.component == FlightComponent::kDelivery &&
        r.kind == FlightKind::kDeliverEnd) {
      ++mine;
      min_arg = std::min(min_arg, r.arg);
    }
  }
  // Exactly one ring of the newest records survives; the first 100 are
  // overwritten.
  EXPECT_EQ(mine, static_cast<std::uint64_t>(flight::kRingSlots));
  EXPECT_GE(min_arg, 100u);
}

// --- watchdog unit behavior (driven via check_now) ---------------------------

TEST(WatchdogTest, QueueStallAlarmsOncePerStallAndRearms) {
  auto registry = std::make_shared<Registry>();
  WatchdogConfig config;
  config.queue_stall = std::chrono::milliseconds(100);
  Watchdog watchdog(config, registry);
  AlarmProbe probe;
  probe.expected_kind = "queue-stall";
  watchdog.set_alarm(probe.hook());

  std::atomic<std::int64_t> age_us{0};
  const std::uint64_t id =
      watchdog.watch_queue_age("test-queue", [&] { return age_us.load(); });

  watchdog.check_now();
  EXPECT_EQ(probe.count, 0);

  age_us = 200'000;  // 200 ms > the 100 ms threshold
  watchdog.check_now();
  EXPECT_EQ(probe.count, 1);
  EXPECT_TRUE(probe.kind_matched);
  EXPECT_TRUE(probe.flight_nonempty);

  // The stall persists: the latch suppresses repeat alarms.
  watchdog.check_now();
  watchdog.check_now();
  EXPECT_EQ(probe.count, 1);

  // Recovery clears the latch; the next stall alarms again.
  age_us = 0;
  watchdog.check_now();
  age_us = 300'000;
  watchdog.check_now();
  EXPECT_EQ(probe.count, 2);

  // The histogram saw every sample, alarmed or not.
  const Snapshot snap = registry->snapshot();
  const MetricValue* hist = snap.find("obs.delivery_queue_age_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->histogram.count, 6u);
  EXPECT_EQ(snap.counter("obs.watchdog_alarms"), 2u);

  watchdog.unwatch(id);
  age_us = 500'000;
  watchdog.check_now();
  EXPECT_EQ(probe.count, 2);  // unwatched probes never alarm
}

TEST(WatchdogTest, SleepingLoopThreadPostAlarmsExactlyOnce) {
  auto registry = std::make_shared<Registry>();
  WatchdogConfig config;
  config.loop_stall = std::chrono::milliseconds(50);
  Watchdog watchdog(config, registry);
  AlarmProbe probe;
  probe.expected_kind = "loop-stall";
  watchdog.set_alarm(probe.hook());

  net::EventLoop loop("wd-test-loop");
  watchdog.watch_heartbeat("wd-test-loop",
                           [&loop](std::function<void()> pong) {
                             return loop.post(std::move(pong));
                           });

  // Wedge the loop thread: the posted task blocks until released, so the
  // watchdog's pong sits behind it in the queue.
  Latch latch;
  ASSERT_TRUE(loop.post([&latch] { latch.wait(); }));

  watchdog.check_now();  // sends the beat; pong cannot land
  EXPECT_EQ(probe.count, 0);
  settle(std::chrono::milliseconds(120));  // let the beat age past 50 ms
  watchdog.check_now();
  EXPECT_EQ(probe.count, 1);
  EXPECT_TRUE(probe.kind_matched);
  EXPECT_TRUE(probe.flight_nonempty);

  // Still stalled across further checks: exactly once.
  watchdog.check_now();
  watchdog.check_now();
  EXPECT_EQ(probe.count, 1);

  // Unblock; the pong lands (visible as an obs.loop_lag_us sample).
  latch.release();
  ASSERT_TRUE(wait_until([&] {
    const Snapshot snap = registry->snapshot();  // keep the map alive
    const MetricValue* lag = snap.find("obs.loop_lag_us");
    return lag != nullptr && lag->histogram.count > 0;
  }));
  watchdog.check_now();  // recovered: clears the latch, sends a new beat
  EXPECT_EQ(probe.count, 1);
  loop.stop();
}

TEST(WatchdogTest, RejectedBeatIsSkippedNotAlarmed) {
  auto registry = std::make_shared<Registry>();
  WatchdogConfig config;
  config.loop_stall = std::chrono::milliseconds(0);
  Watchdog watchdog(config, registry);
  AlarmProbe probe;
  watchdog.set_alarm(probe.hook());
  // A target that refuses the beat (shutting down) must not look stalled.
  watchdog.watch_heartbeat("gone",
                           [](std::function<void()>) { return false; });
  watchdog.check_now();
  settle(std::chrono::milliseconds(20));
  watchdog.check_now();
  watchdog.check_now();
  EXPECT_EQ(probe.count, 0);
}

TEST(WatchdogTest, TimerLagAlarmsOnLateCheck) {
  auto registry = std::make_shared<Registry>();
  WatchdogConfig config;
  config.timer_lag = std::chrono::milliseconds(100);
  Watchdog watchdog(config, registry);
  AlarmProbe probe;
  probe.expected_kind = "timer-lag";
  watchdog.set_alarm(probe.hook());

  // Pretend the check was scheduled half a second ago.
  watchdog.check_now(now_us() - 500'000);
  EXPECT_EQ(probe.count, 1);
  EXPECT_TRUE(probe.kind_matched);
  // Still late: latched.
  watchdog.check_now(now_us() - 500'000);
  EXPECT_EQ(probe.count, 1);
  // On time again: recovery, then a fresh lag alarms anew.
  watchdog.check_now();
  watchdog.check_now(now_us() - 500'000);
  EXPECT_EQ(probe.count, 2);
}

// --- end-to-end: blocked delivery callback under a real Peer ----------------

// A subscriber callback that never returns starves the delivery executor;
// the peer's own watchdog (periodic, on the shared timer queue) notices the
// aging queue and raises exactly one alarm carrying a flight snapshot.
TEST(WatchdogIntegrationTest, BlockedDeliveryCallbackRaisesOneAlarm) {
  TestNet net;
  jxta::PeerConfig alice_config;
  alice_config.name = "alice";
  alice_config.heartbeat = std::chrono::milliseconds(100);
  alice_config.watchdog = true;
  alice_config.watchdog_config.period = std::chrono::milliseconds(50);
  alice_config.watchdog_config.queue_stall = std::chrono::milliseconds(200);
  // Generous loop/timer thresholds: this test asserts zero false positives
  // from the other sources while the queue stalls.
  alice_config.watchdog_config.loop_stall = std::chrono::seconds(30);
  alice_config.watchdog_config.timer_lag = std::chrono::seconds(30);
  jxta::Peer& alice = net.add_peer(std::move(alice_config));
  jxta::Peer& bob = net.add_peer("bob");

  ASSERT_NE(alice.watchdog(), nullptr);
  EXPECT_EQ(bob.watchdog(), nullptr);  // off by default
  AlarmProbe probe;
  probe.expected_kind = "queue-stall";
  alice.watchdog()->set_alarm(probe.hook());

  tps::TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(300);
  config.finder_period = std::chrono::milliseconds(150);
  config.delivery_workers = 1;
  tps::TpsEngine<SkiRental> engine_a(alice, config);
  auto sub = engine_a.new_interface();
  Latch latch;
  std::atomic<int> received{0};
  sub.subscribe(tps::make_callback<SkiRental>([&](const SkiRental&) {
                  // The first delivery wedges the lone worker; the rest
                  // queue up behind it and age.
                  if (received.fetch_add(1) == 0) latch.wait();
                }),
                tps::ignore_exceptions<SkiRental>());
  tps::TpsEngine<SkiRental> engine_b(bob, config);
  auto pub = engine_b.new_interface();
  pub.publish(SkiRental("Shop", 14.0f, "Brand", 99.0f));
  ASSERT_TRUE(wait_until([&] { return received > 0; }));
  // Two more deliveries pile up behind the blocked worker.
  pub.publish(SkiRental("Shop", 15.0f, "Brand", 99.0f));
  pub.publish(SkiRental("Shop", 16.0f, "Brand", 99.0f));

  ASSERT_TRUE(wait_until([&] { return probe.count > 0; }));
  EXPECT_TRUE(probe.kind_matched);
  EXPECT_TRUE(probe.flight_nonempty);
  // The stall persists for many more watchdog periods: still one alarm.
  settle(std::chrono::milliseconds(400));
  EXPECT_EQ(probe.count, 1);
  EXPECT_EQ(alice.watchdog()->alarms(), 1u);
  EXPECT_EQ(
      alice.metrics().snapshot().counter("obs.watchdog_alarms"), 1u);

  latch.release();
  ASSERT_TRUE(wait_until([&] { return received >= 3; }));
}

}  // namespace
}  // namespace p2p::obs
