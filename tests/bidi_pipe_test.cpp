// Tests for bi-directional pipes (paper §2.1's "very new bi-directional
// pipes").
#include <gtest/gtest.h>

#include <atomic>

#include "jxta/bidi_pipe.h"
#include "support/test_net.h"
#include "support/timing.h"

namespace p2p::jxta {
namespace {

using p2p::testing::TestNet;
using p2p::testing::wait_until;

PipeAdvertisement listen_adv(const std::string& name) {
  PipeAdvertisement adv;
  adv.pid = PipeId::derive("bidi-listen:" + name);
  adv.name = name;
  adv.type = PipeAdvertisement::Type::kUnicast;
  return adv;
}

Message text_message(const std::string& text) {
  Message m;
  m.add_string("text", text);
  return m;
}

TEST(BidiPipeTest, ConnectAndExchangeBothWays) {
  TestNet net;
  Peer& server = net.add_peer("server");
  Peer& client = net.add_peer("client");
  BidiAcceptor acceptor(server, listen_adv("echo"));

  auto client_pipe = BidiPipe::connect(client, listen_adv("echo"),
                                       std::chrono::milliseconds(3000));
  ASSERT_NE(client_pipe, nullptr);
  auto server_pipe = acceptor.accept(std::chrono::milliseconds(3000));
  ASSERT_NE(server_pipe, nullptr);

  // Client -> server.
  EXPECT_TRUE(client_pipe->send(text_message("ping")));
  auto got = server_pipe->poll(std::chrono::milliseconds(3000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->get_string("text"), "ping");
  // Server -> client, same channel.
  EXPECT_TRUE(server_pipe->send(text_message("pong")));
  got = client_pipe->poll(std::chrono::milliseconds(3000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->get_string("text"), "pong");
}

TEST(BidiPipeTest, AcceptHandlerStyleEchoServer) {
  TestNet net;
  Peer& server = net.add_peer("server");
  Peer& client = net.add_peer("client");
  // Declared before the acceptor: the acceptor's destructor joins its
  // handshake workers, and a worker may still be appending to
  // `connections` — so `connections` must be destroyed after it.
  std::mutex mu;
  std::vector<std::shared_ptr<BidiPipe>> connections;
  BidiAcceptor acceptor(server, listen_adv("echo2"));
  acceptor.set_accept_handler([&](std::shared_ptr<BidiPipe> pipe) {
    auto* raw = pipe.get();
    raw->set_listener([raw](Message m) {
      Message reply;
      reply.add_string("text",
                       "echo: " + m.get_string("text").value_or(""));
      raw->send(reply);
    });
    const std::lock_guard lock(mu);
    connections.push_back(std::move(pipe));
  });

  auto client_pipe = BidiPipe::connect(client, listen_adv("echo2"),
                                       std::chrono::milliseconds(3000));
  ASSERT_NE(client_pipe, nullptr);
  ASSERT_TRUE(client_pipe->send(text_message("hello")));
  const auto got = client_pipe->poll(std::chrono::milliseconds(3000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->get_string("text"), "echo: hello");
}

TEST(BidiPipeTest, MultipleConcurrentConnectionsAreIsolated) {
  TestNet net;
  Peer& server = net.add_peer("server");
  Peer& c1 = net.add_peer("c1");
  Peer& c2 = net.add_peer("c2");
  BidiAcceptor acceptor(server, listen_adv("multi"));

  auto p1 = BidiPipe::connect(c1, listen_adv("multi"),
                              std::chrono::milliseconds(3000));
  auto p2 = BidiPipe::connect(c2, listen_adv("multi"),
                              std::chrono::milliseconds(3000));
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  auto s1 = acceptor.accept(std::chrono::milliseconds(3000));
  auto s2 = acceptor.accept(std::chrono::milliseconds(3000));
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);

  // Replies go to the right connection even though accept order is
  // unspecified: identify each server pipe by a probe first.
  EXPECT_TRUE(p1->send(text_message("I am c1")));
  EXPECT_TRUE(p2->send(text_message("I am c2")));
  const auto m1 = s1->poll(std::chrono::milliseconds(3000));
  const auto m2 = s2->poll(std::chrono::milliseconds(3000));
  ASSERT_TRUE(m1.has_value());
  ASSERT_TRUE(m2.has_value());
  EXPECT_NE(m1->get_string("text"), m2->get_string("text"));
  // Server answers s1's peer only; only that client hears it.
  EXPECT_TRUE(s1->send(text_message("to you only")));
  const bool c1_got =
      p1->poll(std::chrono::milliseconds(500)).has_value();
  const bool c2_got =
      p2->poll(std::chrono::milliseconds(200)).has_value();
  EXPECT_NE(c1_got, c2_got);  // exactly one of them
}

TEST(BidiPipeTest, ConnectToNobodyTimesOut) {
  TestNet net;
  Peer& client = net.add_peer("client");
  EXPECT_EQ(BidiPipe::connect(client, listen_adv("ghost"),
                              std::chrono::milliseconds(300)),
            nullptr);
}

TEST(BidiPipeTest, CloseNotifiesPeer) {
  TestNet net;
  Peer& server = net.add_peer("server");
  Peer& client = net.add_peer("client");
  BidiAcceptor acceptor(server, listen_adv("closing"));
  auto client_pipe = BidiPipe::connect(client, listen_adv("closing"),
                                       std::chrono::milliseconds(3000));
  ASSERT_NE(client_pipe, nullptr);
  auto server_pipe = acceptor.accept(std::chrono::milliseconds(3000));
  ASSERT_NE(server_pipe, nullptr);
  client_pipe->close();
  EXPECT_FALSE(client_pipe->send(text_message("after close")));
  EXPECT_TRUE(wait_until([&] { return server_pipe->closed(); }));
  EXPECT_FALSE(server_pipe->poll(std::chrono::milliseconds(100))
                   .has_value());
}

TEST(BidiPipeTest, ListenerReceivesBacklogAndLive) {
  TestNet net;
  Peer& server = net.add_peer("server");
  Peer& client = net.add_peer("client");
  BidiAcceptor acceptor(server, listen_adv("backlog"));
  auto client_pipe = BidiPipe::connect(client, listen_adv("backlog"),
                                       std::chrono::milliseconds(3000));
  ASSERT_NE(client_pipe, nullptr);
  auto server_pipe = acceptor.accept(std::chrono::milliseconds(3000));
  ASSERT_NE(server_pipe, nullptr);
  client_pipe->send(text_message("early"));
  // Let the early message arrive and queue before the listener exists.
  p2p::testing::settle(std::chrono::milliseconds(200));
  std::atomic<int> got{0};
  server_pipe->set_listener([&](Message) { ++got; });
  EXPECT_TRUE(wait_until([&] { return got == 1; }));
  client_pipe->send(text_message("late"));
  EXPECT_TRUE(wait_until([&] { return got == 2; }));
}

TEST(BidiPipeTest, AcceptorCloseStopsNewConnections) {
  TestNet net;
  Peer& server = net.add_peer("server");
  Peer& client = net.add_peer("client");
  auto acceptor =
      std::make_unique<BidiAcceptor>(server, listen_adv("shut"));
  acceptor->close();
  EXPECT_EQ(BidiPipe::connect(client, listen_adv("shut"),
                              std::chrono::milliseconds(300)),
            nullptr);
}

}  // namespace
}  // namespace p2p::jxta
