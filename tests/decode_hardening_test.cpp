// Regression tests for the decode trust boundary (see DESIGN.md): every
// bug class the fuzz harnesses probe, frozen as a named test. Each test
// documents the attack it guards against — a peer-supplied byte sequence
// that once crashed, threw through a reactor thread, or amplified a tiny
// frame into a huge allocation.
#include <gtest/gtest.h>

#include <string>

#include "jxta/endpoint.h"
#include "jxta/message.h"
#include "net/framing.h"
#include "obs/trace.h"
#include "tps/batch.h"
#include "util/bytes.h"
#include "xml/xml.h"

namespace p2p {
namespace {

using util::Bytes;
using util::ByteReader;
using util::ByteWriter;
using util::DecodeError;
using util::DecodeLimits;

// --- XML: recursion and character references ------------------------------

// Finding class: unbounded recursion. A document of N nested elements
// consumed O(N) stack frames; ~50k "<a>" crashed the parser thread. The
// depth cap turns it into a classified parse failure.
TEST(DecodeHardeningTest, XmlNestingBeyondDepthCapIsRejected) {
  std::string doc;
  for (int i = 0; i < 50000; ++i) doc += "<a>";
  std::string error;
  EXPECT_FALSE(xml::try_parse(doc, {}, &error).has_value());
  EXPECT_NE(error.find("depth"), std::string::npos);

  // Right at the cap still parses.
  const xml::ParseLimits limits{.max_depth = 8};
  std::string ok_doc, close;
  for (int i = 0; i < 8; ++i) {
    ok_doc += "<a>";
    close = "</a>" + close;
  }
  EXPECT_TRUE(xml::try_parse(ok_doc + close, limits).has_value());
  EXPECT_FALSE(xml::try_parse("<b>" + ok_doc + close + "</b>", limits)
                   .has_value());
}

// Finding class: integer wraparound in "&#NNN;" accumulation. The code
// point 4294967297 wraps a uint32 to 1; 4294967361 wraps to 'A' — a
// hostile document could smuggle characters past content filters. The
// parser must reject the reference before the multiply overflows.
TEST(DecodeHardeningTest, XmlCharReferenceOverflowIsRejected) {
  EXPECT_FALSE(xml::try_parse("<a>&#4294967297;</a>").has_value());
  EXPECT_FALSE(xml::try_parse("<a>&#4294967361;</a>").has_value());
  EXPECT_FALSE(xml::try_parse("<a>&#x110000;</a>").has_value());  // > max
  const auto ok = xml::try_parse("<a>&#65;</a>");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->text(), "A");
}

// Oversized input is rejected up front, before tokenization.
TEST(DecodeHardeningTest, XmlInputSizeCapIsEnforced) {
  const xml::ParseLimits limits{.max_input = 64};
  const std::string big = "<a>" + std::string(128, 'x') + "</a>";
  EXPECT_FALSE(xml::try_parse(big, limits).has_value());
}

// --- ByteReader: allocation amplification and sticky errors ---------------

// Finding class: length-prefix amplification. An 8-byte frame declaring a
// 4 GiB string made the old reader allocate before noticing truncation.
// The cap check runs before any allocation.
TEST(DecodeHardeningTest, VarintLengthPrefixIsCappedBeforeAllocation) {
  ByteWriter w;
  w.write_varint(std::uint64_t{1} << 32);  // claims a 4 GiB payload
  const Bytes frame = w.take();
  const DecodeLimits limits{.max_length = 1024};
  ByteReader r(frame, limits);
  std::string out;
  EXPECT_FALSE(r.try_read_string(out));
  EXPECT_EQ(r.error(), DecodeError::kLengthCap);
}

// A declared length under the cap but past the end of the buffer is
// truncation, detected without allocating the declared size.
TEST(DecodeHardeningTest, TruncatedPayloadIsATruncationError) {
  ByteWriter w;
  w.write_varint(100);  // declares 100 bytes, provides none
  ByteReader r(w.take());
  Bytes out;
  EXPECT_FALSE(r.try_read_bytes(out));
  EXPECT_EQ(r.error(), DecodeError::kTruncated);
}

// Errors latch: once a read fails, every subsequent read fails too, so a
// decoder can run its full read sequence and check ok() once.
TEST(DecodeHardeningTest, ReaderErrorsAreSticky) {
  const Bytes one{0x01};
  ByteReader r(one);
  std::uint64_t v = 0;
  EXPECT_TRUE(r.try_read_varint(v));
  std::uint32_t u = 0;
  EXPECT_FALSE(r.try_read_u32(u));
  std::uint8_t b = 0;
  EXPECT_FALSE(r.try_read_u8(b));  // would succeed on a fresh reader
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), DecodeError::kTruncated);
}

// --- tps:batch: count amplification and version gating --------------------

// Finding class: count amplification. A 10-byte frame claiming 2^32
// events drove a 2^32-iteration loop (and a giant reserve) in the old
// decoder. The count cap rejects it before the loop.
TEST(DecodeHardeningTest, BatchCountBeyondCapIsRejected) {
  ByteWriter w;
  w.write_u8(tps::kBatchFrameVersion);
  w.write_varint(std::uint64_t{1} << 32);
  const auto result = tps::try_decode_batch_frame(w.data());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, DecodeError::kCountCap);
}

// An unknown version is a classified bad value, and the throwing wrapper
// keeps its historical message (frozen by wire_format_test).
TEST(DecodeHardeningTest, BatchUnknownVersionIsBadValue) {
  ByteWriter w;
  w.write_u8(99);
  w.write_varint(0);
  const auto result = tps::try_decode_batch_frame(w.data());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, DecodeError::kBadValue);
}

// A batch event whose payload length exceeds the per-event cap is
// rejected even when the count is modest.
TEST(DecodeHardeningTest, BatchEventPayloadIsCapped) {
  ByteWriter w;
  w.write_u8(tps::kBatchFrameVersion);
  w.write_varint(1);
  w.write_u64(1);  // id.hi
  w.write_u64(2);  // id.lo
  w.write_varint(std::uint64_t{1} << 30);  // 1 GiB payload claim
  const tps::BatchLimits limits{.max_event_bytes = 4096};
  const auto result = tps::try_decode_batch_frame(w.data(), limits);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, DecodeError::kLengthCap);
}

// --- endpoint / jxta message: no throw on the datagram path ---------------

// Finding class: truncated-frame throw. EndpointMessage::deserialize threw
// ParseError out of the reactor callback; try_deserialize classifies
// instead. (endpoint.cpp counts these as net.decode_errors.)
TEST(DecodeHardeningTest, TruncatedEndpointMessageDoesNotThrow) {
  jxta::EndpointMessage msg;
  msg.service = "jxta.resolver";
  msg.payload = {1, 2, 3};
  Bytes wire = msg.serialize();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    util::DecodeError error = util::DecodeError::kNone;
    const auto out = jxta::EndpointMessage::try_deserialize(
        std::span(wire.data(), cut), &error);
    EXPECT_FALSE(out.has_value()) << "cut=" << cut;
    EXPECT_NE(error, util::DecodeError::kNone) << "cut=" << cut;
  }
  EXPECT_TRUE(jxta::EndpointMessage::try_deserialize(wire).has_value());
}

TEST(DecodeHardeningTest, TruncatedJxtaMessageDoesNotThrow) {
  jxta::Message m;
  m.add_string("tps:type", "news");
  m.add_bytes("tps:event", {9, 9, 9});
  Bytes wire = m.serialize();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(jxta::Message::try_deserialize(std::span(wire.data(), cut))
                     .has_value())
        << "cut=" << cut;
  }
  EXPECT_TRUE(jxta::Message::try_deserialize(wire).has_value());
}

// A message claiming an enormous element count must fail on the count
// cap, not reserve gigabytes.
TEST(DecodeHardeningTest, JxtaMessageElementCountIsCapped) {
  ByteWriter w;
  w.write_u64(1);  // msg id hi
  w.write_u64(2);  // msg id lo
  w.write_varint(std::uint64_t{1} << 40);  // element count
  util::DecodeError error = util::DecodeError::kNone;
  EXPECT_FALSE(
      jxta::Message::try_deserialize(w.data(), {}, &error).has_value());
  EXPECT_EQ(error, DecodeError::kCountCap);
}

// --- obs trace hops: hostile trace elements are best-effort ---------------

// obs:hops is peer-supplied and decoded on receive paths that no longer
// have a catch-all; hostile bytes must yield a (possibly empty) prefix.
TEST(DecodeHardeningTest, HostileHopsDecodeToCleanPrefix) {
  ByteWriter w;
  w.write_varint(1000000);  // claims a million hops
  w.write_string("peer-1");
  w.write_string("stage");
  w.write_i64(42);
  // Second record truncated mid-string.
  w.write_varint(100);
  const auto hops = obs::decode_hops(w.data());
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].peer, "peer-1");
  EXPECT_NO_THROW(obs::decode_hops(Bytes{0xff, 0xff, 0xff}));
}

// --- TCP framing: reassembly state machine --------------------------------

TEST(DecodeHardeningTest, FrameAssemblerReassemblesByteAtATime) {
  const Bytes payload{10, 20, 30};
  const Bytes wire =
      net::FrameAssembler::encode("tcp://127.0.0.1:5001", payload);
  net::FrameAssembler assembler;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    assembler.feed(std::span(&wire[i], 1));
    EXPECT_FALSE(assembler.next().has_value()) << "byte " << i;
  }
  assembler.feed(std::span(&wire[wire.size() - 1], 1));
  const auto frame = assembler.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->src_text, "tcp://127.0.0.1:5001");
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(assembler.buffered(), 0u);
}

// Finding class: a frame_len below the 2-byte minimum (or above the cap)
// means the stream can never resynchronise; the assembler latches corrupt
// instead of spinning or crashing.
TEST(DecodeHardeningTest, FrameAssemblerLatchesCorruptOnBadLength) {
  net::FrameAssembler assembler;
  const Bytes zero_len{0, 0, 0, 0};
  assembler.feed(zero_len);
  EXPECT_FALSE(assembler.next().has_value());
  EXPECT_TRUE(assembler.corrupt());
  EXPECT_EQ(assembler.error(), DecodeError::kBadValue);
  // Corrupt is sticky: further feeds are discarded.
  assembler.feed(net::FrameAssembler::encode("tcp://127.0.0.1:1", {}));
  EXPECT_FALSE(assembler.next().has_value());
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(DecodeHardeningTest, FrameAssemblerRejectsOversizedFrame) {
  net::FrameAssembler assembler(1024);  // 1 KiB cap
  ByteWriter w;
  w.write_u32(2048);  // frame larger than the cap
  w.write_u16(0);
  assembler.feed(w.data());
  EXPECT_FALSE(assembler.next().has_value());
  EXPECT_TRUE(assembler.corrupt());
}

// src_len pointing past the frame end was an out-of-bounds read in a
// hand-rolled parser shape; the assembler classifies it.
TEST(DecodeHardeningTest, FrameAssemblerRejectsSrcLenBeyondFrame) {
  net::FrameAssembler assembler;
  ByteWriter w;
  w.write_u32(4);    // frame body: 4 bytes
  w.write_u16(40);   // ...but claims a 40-byte src
  w.write_u16(0);    // filler so the body is complete
  assembler.feed(w.data());
  EXPECT_FALSE(assembler.next().has_value());
  EXPECT_TRUE(assembler.corrupt());
  EXPECT_EQ(assembler.error(), DecodeError::kBadValue);
}

TEST(DecodeHardeningTest, FrameAssemblerHandlesBackToBackFrames) {
  const Bytes a = net::FrameAssembler::encode("tcp://127.0.0.1:1", Bytes{1});
  const Bytes b =
      net::FrameAssembler::encode("tcp://127.0.0.1:2", Bytes{2, 2});
  Bytes stream = a;
  stream.insert(stream.end(), b.begin(), b.end());
  net::FrameAssembler assembler;
  assembler.feed(stream);
  const auto f1 = assembler.next();
  const auto f2 = assembler.next();
  ASSERT_TRUE(f1 && f2);
  EXPECT_EQ(f1->src_text, "tcp://127.0.0.1:1");
  EXPECT_EQ(f2->payload, (Bytes{2, 2}));
  EXPECT_FALSE(assembler.next().has_value());
}

}  // namespace
}  // namespace p2p
