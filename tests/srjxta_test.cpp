// Tests for the SR-JXTA baseline (paper §4.4): the three hand-coded classes
// of Figs. 15-17 and the assembled SrSession.
#include <gtest/gtest.h>

#include <atomic>

#include "srjxta/sr_session.h"
#include "support/test_net.h"
#include "support/timing.h"

namespace p2p::srjxta {
namespace {

using jxta::DiscoveryType;
using jxta::PeerGroupAdvertisement;
using p2p::testing::TestNet;
using p2p::testing::wait_until;

SrConfig fast_config() {
  SrConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(300);
  config.finder_period = std::chrono::milliseconds(150);
  return config;
}

// --- AdvertisementsCreator (Fig. 15) ------------------------------------------

TEST(SrCreatorTest, AdvertisementHasPaperStructure) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  AdvertisementsCreator creator(alice, alice.discovery());
  const PeerGroupAdvertisement adv =
      creator.create_peer_group_advertisement("SkiRental");
  // Line 21: name = PS_PREFIX + pipe name.
  EXPECT_EQ(adv.name, "PS_SkiRental");
  // Line 19: creator pid = local peer.
  EXPECT_EQ(adv.creator, alice.id());
  // Line 35: rendezvous flag set.
  EXPECT_TRUE(adv.is_rendezvous);
  // Lines 27-35: embedded wire service with the type-named pipe.
  const auto* wire = adv.service(jxta::WireService::kWireName);
  ASSERT_NE(wire, nullptr);
  ASSERT_TRUE(wire->pipe.has_value());
  EXPECT_EQ(wire->pipe->name, "SkiRental");  // line 13
  EXPECT_EQ(wire->pipe->type, jxta::PipeAdvertisement::Type::kPropagate);
  // Lines 37-41: resolver params carry the local peer id.
  const auto* resolver = adv.service("jxta.service.resolver");
  ASSERT_NE(resolver, nullptr);
  ASSERT_FALSE(resolver->params.empty());
  EXPECT_EQ(resolver->params.front(), alice.id().to_string());
}

TEST(SrCreatorTest, FreshIdsEveryCall) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  AdvertisementsCreator creator(alice, alice.discovery());
  const auto a = creator.create_peer_group_advertisement("X");
  const auto b = creator.create_peer_group_advertisement("X");
  EXPECT_NE(a.gid, b.gid);  // random ids, as in the paper
}

TEST(SrCreatorTest, PublishReachesLocalAndRemoteCaches) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  AdvertisementsCreator creator(alice, alice.discovery());
  const auto adv = creator.create_peer_group_advertisement("Pub");
  creator.publish_advertisement(adv, jxta::kDefaultAdvLifetimeMs);
  EXPECT_FALSE(alice.discovery()
                   .get_local(DiscoveryType::kGroup, "Name", "PS_Pub")
                   .empty());
  EXPECT_TRUE(wait_until([&] {
    return !bob.discovery()
                .get_local(DiscoveryType::kGroup, "Name", "PS_Pub")
                .empty();
  }));
}

// --- AdvertisementsFinder (Fig. 16) ----------------------------------------------

class RecordingListener final : public AdvertisementsListenerInterface {
 public:
  void handle_new_advertisements(const PeerGroupAdvertisement& adv) override {
    const std::lock_guard lock(mu_);
    advs_.push_back(adv);
  }
  std::vector<PeerGroupAdvertisement> advs() const {
    const std::lock_guard lock(mu_);
    return advs_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<PeerGroupAdvertisement> advs_;
};

TEST(SrFinderTest, FindsRemoteAdvertisements) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  AdvertisementsCreator creator(bob, bob.discovery());
  creator.publish_advertisement(
      creator.create_peer_group_advertisement("FindMe"),
      jxta::kDefaultAdvLifetimeMs);
  AdvertisementsFinder finder(alice, DiscoveryType::kGroup,
                              alice.discovery(), "PS_FindMe");
  RecordingListener listener;
  finder.add_listener(&listener);
  finder.start(std::chrono::milliseconds(100));
  EXPECT_TRUE(wait_until([&] { return listener.advs().size() == 1; }));
  EXPECT_EQ(listener.advs()[0].name, "PS_FindMe");
  finder.remove_listener(&listener);
  finder.stop();
}

TEST(SrFinderTest, DispatchesEachAdvertisementOnce) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  AdvertisementsCreator creator(alice, alice.discovery());
  const auto adv = creator.create_peer_group_advertisement("Once");
  creator.publish_advertisement(adv, jxta::kDefaultAdvLifetimeMs);
  AdvertisementsFinder finder(alice, DiscoveryType::kGroup,
                              alice.discovery(), "PS_Once");
  RecordingListener listener;
  finder.add_listener(&listener);
  finder.start(std::chrono::milliseconds(50));
  ASSERT_TRUE(wait_until([&] { return !listener.advs().empty(); }));
  p2p::testing::settle(std::chrono::milliseconds(300));
  EXPECT_EQ(listener.advs().size(), 1u);  // many run_once(), one dispatch
  finder.remove_listener(&listener);
  finder.stop();
}

TEST(SrFinderTest, LateListenerGetsReplay) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  AdvertisementsCreator creator(alice, alice.discovery());
  creator.publish_advertisement(
      creator.create_peer_group_advertisement("Replay"),
      jxta::kDefaultAdvLifetimeMs);
  AdvertisementsFinder finder(alice, DiscoveryType::kGroup,
                              alice.discovery(), "PS_Replay");
  finder.start(std::chrono::milliseconds(100));
  ASSERT_TRUE(wait_until([&] { return !finder.advertisements().empty(); }));
  RecordingListener late;
  finder.add_listener(&late);
  EXPECT_EQ(late.advs().size(), 1u);
  finder.remove_listener(&late);
  finder.stop();
}

TEST(SrFinderTest, FindAdvertisementComparesByGid) {
  // The paper's Fig. 16 lines 42-60 logic.
  PeerGroupAdvertisement a;
  a.gid = jxta::PeerGroupId::generate();
  a.name = "one";
  PeerGroupAdvertisement same_gid = a;
  same_gid.name = "renamed";
  PeerGroupAdvertisement other;
  other.gid = jxta::PeerGroupId::generate();
  EXPECT_TRUE(AdvertisementsFinder::find_advertisement({a}, same_gid));
  EXPECT_FALSE(AdvertisementsFinder::find_advertisement({a}, other));
  EXPECT_FALSE(AdvertisementsFinder::find_advertisement({}, a));
}

TEST(SrFinderTest, FlushOldEmptiesCaches) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  AdvertisementsCreator creator(alice, alice.discovery());
  creator.publish_advertisement(
      creator.create_peer_group_advertisement("F"),
      jxta::kDefaultAdvLifetimeMs);
  AdvertisementsFinder finder(alice, DiscoveryType::kGroup,
                              alice.discovery(), "PS_F");
  finder.flush_old();
  EXPECT_TRUE(
      alice.discovery().get_local(DiscoveryType::kGroup).empty());
}

// --- WireServiceFinder (Fig. 17) ---------------------------------------------------

TEST(SrWireFinderTest, LookupAndPipes) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  AdvertisementsCreator creator(alice, alice.discovery());
  const auto adv = creator.create_peer_group_advertisement("Wired");
  WireServiceFinder finder(alice, adv);
  finder.lookup_wire_service();
  EXPECT_EQ(finder.get_pipe_advertisement().name, "Wired");
  auto in = finder.create_input_pipe();
  auto out = finder.create_output_pipe();
  ASSERT_NE(in.pipe, nullptr);
  ASSERT_NE(out.pipe, nullptr);
  jxta::Message m;
  m.add_string("k", "v");
  finder.publish(m);  // Fig. 17 line 51
  const auto got = in.pipe->poll(std::chrono::milliseconds(2000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->get_string("k"), "v");
  // publish() sent a dup(): fresh message identity on the wire.
  EXPECT_NE(got->id(), m.id());
}

TEST(SrWireFinderTest, MissingWireServiceThrows) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  PeerGroupAdvertisement bare;
  bare.gid = jxta::PeerGroupId::generate();
  bare.creator = alice.id();
  bare.name = "PS_Bare";
  WireServiceFinder finder(alice, bare);
  EXPECT_THROW(finder.lookup_wire_service(), WireServiceFinderException);
  EXPECT_THROW((void)finder.get_pipe_advertisement(),
               WireServiceFinderException);
}

// --- SrSession (the assembled baseline) ------------------------------------------------

TEST(SrSessionTest, PublishSubscribeBytes) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  auto sub = std::make_shared<SrSession>(alice, "Topic", fast_config());
  sub->init();
  std::atomic<int> got{0};
  util::Bytes last;
  std::mutex mu;
  sub->set_receiver([&](const util::Bytes& payload) {
    const std::lock_guard lock(mu);
    last = payload;
    ++got;
  });
  auto pub = std::make_shared<SrSession>(bob, "Topic", fast_config());
  pub->init();
  // Publish until the first delivery lands (events published before the
  // advertisement sets converge are not replayed — pub/sub is lossy).
  EXPECT_TRUE(wait_until([&] {
    pub->publish(util::to_bytes("raw payload"));
    return got >= 1;
  }));
  const std::lock_guard lock(mu);
  EXPECT_EQ(util::to_string(last), "raw payload");
}

TEST(SrSessionTest, AdvertisementMinimization) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  auto first = std::make_shared<SrSession>(alice, "Min", fast_config());
  first->init();
  // A generous search window: the assertion is about minimization, not
  // about discovery being fast under CI load (found-early returns early).
  SrConfig patient = fast_config();
  patient.adv_search_timeout = std::chrono::milliseconds(3000);
  auto second = std::make_shared<SrSession>(bob, "Min", patient);
  second->init();
  // The second session adopted the existing advertisement (func. (1)).
  EXPECT_EQ(second->advertisement_count(), 1u);
}

TEST(SrSessionTest, DuplicateSuppressionAcrossTwoAdvertisements) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  net.fabric().partition("alice", "bob");
  SrConfig config = fast_config();
  config.adv_search_timeout = std::chrono::milliseconds(1);
  auto sub = std::make_shared<SrSession>(alice, "Dup", config);
  auto pub = std::make_shared<SrSession>(bob, "Dup", config);
  sub->init();
  pub->init();
  net.fabric().heal("alice", "bob");
  ASSERT_TRUE(wait_until([&] {
    return sub->advertisement_count() == 2 &&
           pub->advertisement_count() == 2;
  }));
  std::atomic<int> got{0};
  sub->set_receiver([&](const util::Bytes&) { ++got; });
  for (int i = 0; i < 10; ++i) pub->publish({static_cast<uint8_t>(i)});
  ASSERT_TRUE(wait_until([&] { return got >= 10; }));
  p2p::testing::settle(std::chrono::milliseconds(300));
  EXPECT_EQ(got, 10);
  EXPECT_GT(sub->stats().duplicates_suppressed, 0u);
  EXPECT_EQ(pub->stats().wire_sends, 20u);
}

TEST(SrSessionTest, PublishBeforeInitThrows) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  auto session = std::make_shared<SrSession>(alice, "T", fast_config());
  EXPECT_THROW(session->publish({1}), util::StateError);
}

TEST(SrSessionTest, ShutdownStopsDelivery) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  auto sub = std::make_shared<SrSession>(alice, "Stop", fast_config());
  sub->init();
  std::atomic<int> got{0};
  sub->set_receiver([&](const util::Bytes&) { ++got; });
  auto pub = std::make_shared<SrSession>(bob, "Stop", fast_config());
  pub->init();
  pub->publish({1});
  ASSERT_TRUE(wait_until([&] { return got == 1; }));
  sub->shutdown();
  pub->publish({2});
  p2p::testing::settle(std::chrono::milliseconds(300));
  EXPECT_EQ(got, 1);
}

TEST(SrSessionTest, NoTypeSafetyByConstruction) {
  // The point of the comparison: the SR-JXTA receiver cannot tell that a
  // publisher sent something that is not a SkiRental. TPS makes this a
  // compile-time impossibility; here it is a silent runtime hazard.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  auto sub = std::make_shared<SrSession>(alice, "Hazard", fast_config());
  sub->init();
  std::atomic<bool> got_garbage{false};
  sub->set_receiver([&](const util::Bytes& payload) {
    // Expecting a string-prefixed record; this payload is not one.
    util::ByteReader r(payload);
    try {
      (void)r.read_string();
    } catch (const util::ParseError&) {
      got_garbage = true;  // the runtime surprise TPS prevents
    }
  });
  auto pub = std::make_shared<SrSession>(bob, "Hazard", fast_config());
  pub->init();
  pub->publish(util::Bytes(3, 0xff));
  EXPECT_TRUE(wait_until([&] { return got_garbage.load(); }));
}

}  // namespace
}  // namespace p2p::srjxta
