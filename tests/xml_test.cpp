// Unit tests for src/xml: document model, writer, parser.
#include <gtest/gtest.h>

#include "util/error.h"
#include "xml/xml.h"

namespace p2p::xml {
namespace {

using util::ParseError;

TEST(XmlModelTest, AttributesSetAndGet) {
  Element e("root");
  e.set_attr("a", "1").set_attr("b", "2");
  EXPECT_EQ(e.attr("a"), "1");
  EXPECT_EQ(e.attr("b"), "2");
  EXPECT_FALSE(e.attr("missing").has_value());
  e.set_attr("a", "updated");
  EXPECT_EQ(e.attr("a"), "updated");
  EXPECT_EQ(e.attrs().size(), 2u);
}

TEST(XmlModelTest, ChildrenAndLookup) {
  Element e("root");
  e.add_text_child("name", "alpha");
  e.add_text_child("name", "beta");
  e.add_text_child("other", "x");
  ASSERT_NE(e.child("name"), nullptr);
  EXPECT_EQ(e.child("name")->text(), "alpha");
  EXPECT_EQ(e.children_named("name").size(), 2u);
  EXPECT_EQ(e.child_text("other"), "x");
  EXPECT_EQ(e.child_text("missing"), "");
  EXPECT_EQ(e.child("missing"), nullptr);
}

TEST(XmlModelTest, CloneIsDeepAndEqual) {
  Element e("root");
  e.set_attr("k", "v");
  e.add_text_child("c", "text").set_attr("ck", "cv");
  const Element copy = e.clone();
  EXPECT_TRUE(copy.equals(e));
}

TEST(XmlModelTest, EqualsDetectsDifferences) {
  Element a("root");
  a.add_text_child("c", "1");
  Element b("root");
  b.add_text_child("c", "2");
  EXPECT_FALSE(a.equals(b));
  Element c("other");
  EXPECT_FALSE(a.equals(c));
}

TEST(XmlWriteTest, EscapesSpecialCharacters) {
  Element e("t");
  e.set_attr("a", "x\"y<z>&'");
  e.set_text("a<b>&c");
  const std::string out = write(e);
  EXPECT_NE(out.find("&quot;"), std::string::npos);
  EXPECT_NE(out.find("&lt;b&gt;"), std::string::npos);
  EXPECT_NE(out.find("&amp;"), std::string::npos);
  EXPECT_EQ(out.find("<b>"), std::string::npos);
}

TEST(XmlWriteTest, EmptyElementSelfCloses) {
  EXPECT_NE(write(Element("empty")).find("<empty/>"), std::string::npos);
}

TEST(XmlParseTest, MinimalDocument) {
  const Element e = parse("<root/>");
  EXPECT_EQ(e.name(), "root");
  EXPECT_TRUE(e.children().empty());
  EXPECT_EQ(e.text(), "");
}

TEST(XmlParseTest, DeclarationAndWhitespace) {
  const Element e = parse("  <?xml version=\"1.0\"?>  \n <root>hi</root> ");
  EXPECT_EQ(e.name(), "root");
  EXPECT_EQ(e.text(), "hi");
}

TEST(XmlParseTest, AttributesBothQuoteStyles) {
  const Element e = parse(R"(<r a="1" b='2'/>)");
  EXPECT_EQ(e.attr("a"), "1");
  EXPECT_EQ(e.attr("b"), "2");
}

TEST(XmlParseTest, EntitiesInTextAndAttributes) {
  const Element e =
      parse(R"(<r a="&lt;&amp;&gt;&quot;&apos;">x &amp; y &#65;&#x42;</r>)");
  EXPECT_EQ(e.attr("a"), "<&>\"'");
  EXPECT_EQ(e.text(), "x & y AB");
}

TEST(XmlParseTest, NumericEntityUtf8) {
  const Element e = parse("<r>&#233;&#x20AC;</r>");  // é €
  EXPECT_EQ(e.text(), "\xc3\xa9\xe2\x82\xac");
}

TEST(XmlParseTest, CommentsSkipped) {
  const Element e =
      parse("<!-- hi --><root><!-- inner --><c/><!-- bye --></root>");
  EXPECT_EQ(e.children().size(), 1u);
}

TEST(XmlParseTest, NestedStructure) {
  const Element e = parse("<a><b><c>deep</c></b><b2/></a>");
  ASSERT_NE(e.child("b"), nullptr);
  ASSERT_NE(e.child("b")->child("c"), nullptr);
  EXPECT_EQ(e.child("b")->child("c")->text(), "deep");
  EXPECT_NE(e.child("b2"), nullptr);
}

struct BadXmlCase {
  const char* name;
  const char* text;
};

class XmlParseErrorTest : public ::testing::TestWithParam<BadXmlCase> {};

TEST_P(XmlParseErrorTest, Throws) {
  EXPECT_THROW(parse(GetParam().text), ParseError) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, XmlParseErrorTest,
    ::testing::Values(
        BadXmlCase{"empty", ""}, BadXmlCase{"no_root", "   "},
        BadXmlCase{"mismatched", "<a></b>"},
        BadXmlCase{"unterminated", "<a>"},
        BadXmlCase{"unterminated_attr", "<a k=\"v>"},
        BadXmlCase{"bad_entity", "<a>&bogus;</a>"},
        BadXmlCase{"trailing", "<a/><b/>"},
        BadXmlCase{"duplicate_attr", "<a k=\"1\" k=\"2\"/>"},
        BadXmlCase{"lt_in_attr", "<a k=\"<\"/>"},
        BadXmlCase{"unterminated_comment", "<!-- <a/>"},
        BadXmlCase{"huge_charref", "<a>&#1114112;</a>"},
        BadXmlCase{"empty_charref", "<a>&#;</a>"}),
    [](const auto& info) { return std::string(info.param.name); });

// Property: write(parse(write(e))) is stable for a corpus of documents.
class XmlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlRoundTrip, ParseWriteStable) {
  const Element original = parse(GetParam());
  const std::string text1 = write(original);
  const Element reparsed = parse(text1);
  EXPECT_TRUE(reparsed.equals(original));
  EXPECT_EQ(write(reparsed), text1);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, XmlRoundTrip,
    ::testing::Values(
        "<r/>", "<r>plain text</r>", R"(<r a="1" b="two"/>)",
        "<r><a/><b/><c/></r>",
        R"(<adv t="jxta:Pipe"><Id>urn:jxta:pipe:00ff</Id><Name>Ski</Name></adv>)",
        "<r>mixed &amp; escaped &lt;text&gt;</r>",
        R"(<deep><l1><l2><l3 k="v">x</l3></l2></l1></deep>)"));

TEST(XmlWriteTest, PrettyPrintingParses) {
  Element e("root");
  e.add_text_child("a", "1");
  e.add_child("b").add_text_child("c", "2");
  const std::string pretty = write(e, /*compact=*/false);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_TRUE(parse(pretty).equals(e));
}

}  // namespace
}  // namespace p2p::xml
