// util::TimerQueue: ordering, cancellation (incl. quiescence), both driving
// modes, and behaviour under schedule/cancel churn.

#include "util/timer_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "support/test_net.h"
#include "util/thread_annotations.h"

namespace p2p::util {
namespace {

using testing::wait_until;
using std::chrono::milliseconds;

TEST(TimerQueueTest, FiresInDeadlineOrder) {
  TimerQueue q("tq-test");
  Mutex mu{"tq-test-order"};
  std::vector<int> order;
  const auto now = std::chrono::steady_clock::now();
  // Scheduled out of order on purpose.
  q.schedule_at(now + milliseconds(60), [&] {
    const MutexLock lock(mu);
    order.push_back(3);
  });
  q.schedule_at(now + milliseconds(20), [&] {
    const MutexLock lock(mu);
    order.push_back(1);
  });
  q.schedule_at(now + milliseconds(40), [&] {
    const MutexLock lock(mu);
    order.push_back(2);
  });
  ASSERT_TRUE(wait_until([&] { return q.fired() == 3; }));
  const MutexLock lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerQueueTest, EqualDeadlinesFireInScheduleOrder) {
  // The fabric's per-instant FIFO delivery guarantee rests on this.
  TimerQueue q("tq-test");
  Mutex mu{"tq-test-order"};
  std::vector<int> order;
  const auto deadline = std::chrono::steady_clock::now() + milliseconds(30);
  for (int i = 0; i < 16; ++i) {
    q.schedule_at(deadline, [&, i] {
      const MutexLock lock(mu);
      order.push_back(i);
    });
  }
  ASSERT_TRUE(wait_until([&] { return q.fired() == 16; }));
  const MutexLock lock(mu);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(TimerQueueTest, CancelPendingTimerNeverFires) {
  TimerQueue q("tq-test");
  std::atomic<bool> ran{false};
  const TimerId id =
      q.schedule_after(milliseconds(50), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  // A sibling timer well past the cancelled deadline proves the queue kept
  // running and the cancelled task stayed dead.
  std::atomic<bool> sibling{false};
  q.schedule_after(milliseconds(80), [&] { sibling = true; });
  ASSERT_TRUE(wait_until([&] { return sibling.load(); }));
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(TimerQueueTest, CancelUnknownOrSpentIdReturnsFalse) {
  TimerQueue q("tq-test");
  EXPECT_FALSE(q.cancel(12345));
  const TimerId id = q.schedule_after(milliseconds(0), [] {});
  ASSERT_TRUE(wait_until([&] { return q.fired() == 1; }));
  EXPECT_FALSE(q.cancel(id));  // already fired
}

TEST(TimerQueueTest, CancelBlocksOutFiringCallback) {
  // cancel() of a currently-firing timer must not return until the
  // callback finished — after it, callback-referenced state may die.
  TimerQueue q("tq-test");
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<bool> finished{false};
  const TimerId id = q.schedule_after(milliseconds(0), [&] {
    entered = true;
    while (!release.load()) std::this_thread::yield();
    finished = true;
  });
  ASSERT_TRUE(wait_until([&] { return entered.load(); }));
  std::thread canceller([&] {
    EXPECT_FALSE(q.cancel(id));  // too late to prevent, must wait it out
    EXPECT_TRUE(finished.load());
  });
  release = true;
  canceller.join();
}

TEST(TimerQueueTest, SelfCancelReturnsImmediately) {
  TimerQueue q("tq-test");
  std::atomic<bool> self_result{true};
  std::atomic<bool> done{false};
  std::atomic<TimerId> id{0};
  {
    // The id is published before the deadline can fire (atomically: the
    // callback runs on the queue's thread).
    id = q.schedule_after(milliseconds(30), [&] {
      self_result = q.cancel(id);  // would self-deadlock if it blocked
      done = true;
    });
  }
  ASSERT_TRUE(wait_until([&] { return done.load(); }));
  EXPECT_FALSE(self_result.load());
}

TEST(TimerQueueTest, OrderingAndCancelUnderChurn) {
  // Several threads schedule and cancel concurrently; every timer either
  // fires exactly once or is cancelled exactly once, and nothing leaks.
  TimerQueue q("tq-test");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::atomic<int> fired{0};
  std::atomic<int> cancelled{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const TimerId id = q.schedule_after(
            milliseconds(1 + (i * 7 + t) % 23), [&] { ++fired; });
        // Cancel roughly a third; success and too-late are both fine —
        // the accounting below must balance either way.
        if (i % 3 == 0 && q.cancel(id)) ++cancelled;
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_TRUE(wait_until([&] {
    return fired.load() + cancelled.load() == kThreads * kPerThread;
  }));
  EXPECT_TRUE(wait_until([&] { return q.pending() == 0; }));
  EXPECT_EQ(q.fired(), static_cast<std::uint64_t>(fired.load()));
}

TEST(TimerQueueTest, DrivenModeFiresOnlyThroughRunDue) {
  TimerQueue q("tq-driven", TimerQueue::Mode::kDriven);
  std::atomic<int> wakeups{0};
  q.set_wakeup([&] { ++wakeups; });
  std::atomic<int> fired{0};
  const auto now = std::chrono::steady_clock::now();
  q.schedule_at(now + milliseconds(10), [&] { ++fired; });
  EXPECT_EQ(wakeups.load(), 1);  // first deadline is always "earlier"
  q.schedule_at(now + milliseconds(50), [&] { ++fired; });
  EXPECT_EQ(wakeups.load(), 1);  // later deadline: no re-arm needed
  q.schedule_at(now + milliseconds(5), [&] { ++fired; });
  EXPECT_EQ(wakeups.load(), 2);  // earlier deadline: owner must re-arm

  EXPECT_EQ(q.next_deadline(), now + milliseconds(5));
  // Nothing fires without the owner driving it.
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(q.run_due(now + milliseconds(12)), 2u);
  EXPECT_EQ(fired.load(), 2);
  EXPECT_EQ(q.next_deadline(), now + milliseconds(50));
  EXPECT_EQ(q.run_due(now + milliseconds(60)), 1u);
  EXPECT_EQ(fired.load(), 3);
  EXPECT_EQ(q.next_deadline(), TimePoint::max());
}

TEST(TimerQueueTest, ScheduleAfterStopIsDropped) {
  TimerQueue q("tq-test");
  q.stop();
  std::atomic<bool> ran{false};
  EXPECT_EQ(q.schedule_after(milliseconds(0), [&] { ran = true; }), 0u);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(ran.load());
}

TEST(TimerQueueTest, SharedInstanceFires) {
  std::atomic<bool> ran{false};
  TimerQueue::shared().schedule_after(milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(wait_until([&] { return ran.load(); }));
}

// --- kSimulated (virtual-time) mode -----------------------------------------

TEST(TimerQueueSimTest, AdvanceFiresAtEachVirtualInstant) {
  SimClock clock;
  TimerQueue q("tq-sim", clock);
  std::vector<std::int64_t> fired_at_ms;
  const TimePoint start = clock.now();
  auto at_ms = [&](std::int64_t off) { return start + milliseconds(off); };
  for (const std::int64_t off : {70, 10, 40}) {
    q.schedule_at(at_ms(off), [&, off] {
      // The clock must already read the deadline when the callback runs.
      EXPECT_EQ(clock.now(), at_ms(off));
      fired_at_ms.push_back(off);
    });
  }
  EXPECT_EQ(q.advance_to(at_ms(100)), 3u);
  EXPECT_EQ(fired_at_ms, (std::vector<std::int64_t>{10, 40, 70}));
  EXPECT_EQ(clock.now(), at_ms(100));  // ends at target, not the last deadline
}

TEST(TimerQueueSimTest, PastDeadlineFiresOnNextAdvance) {
  SimClock clock;
  TimerQueue q("tq-sim", clock);
  // A deadline at (or before) the current virtual instant is already due;
  // the next advance must run it even for a zero-length step.
  bool ran = false;
  q.schedule_after(milliseconds(0), [&] { ran = true; });
  EXPECT_EQ(q.advance_by(milliseconds(0)), 1u);
  EXPECT_TRUE(ran);
}

TEST(TimerQueueSimTest, SameInstantKeepsScheduleOrder) {
  SimClock clock;
  TimerQueue q("tq-sim", clock);
  const TimePoint deadline = clock.now() + milliseconds(5);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.schedule_at(deadline, [&, i] { order.push_back(i); });
  }
  q.advance_by(milliseconds(5));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(TimerQueueSimTest, ReArmFiresAtItsOwnVirtualInstant) {
  SimClock clock;
  TimerQueue q("tq-sim", clock);
  const TimePoint start = clock.now();
  std::vector<std::int64_t> ticks_ms;
  // A periodic timer re-arming itself every 10ms: one advance over 35ms
  // must produce ticks at 10/20/30, each observed at its own instant.
  std::function<void()> tick = [&] {
    ticks_ms.push_back(
        std::chrono::duration_cast<milliseconds>(clock.now() - start).count());
    q.schedule_after(milliseconds(10), tick);
  };
  q.schedule_after(milliseconds(10), tick);
  EXPECT_EQ(q.advance_by(milliseconds(35)), 3u);
  EXPECT_EQ(ticks_ms, (std::vector<std::int64_t>{10, 20, 30}));
  EXPECT_EQ(q.pending(), 1u);  // the 40ms re-arm is still waiting
}

TEST(TimerQueueSimTest, CancelDuringAdvanceIsQuiescent) {
  SimClock clock;
  TimerQueue q("tq-sim", clock);
  // The first timer cancels the second (a later virtual instant) while the
  // advance is in flight; the cancelled callback must never run.
  bool victim_ran = false;
  const TimerId victim =
      q.schedule_after(milliseconds(20), [&] { victim_ran = true; });
  q.schedule_after(milliseconds(10), [&] { EXPECT_TRUE(q.cancel(victim)); });
  EXPECT_EQ(q.advance_by(milliseconds(50)), 1u);
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(TimerQueueSimTest, ManualClockAliasStillWorks) {
  // ManualClock is SimClock now; the old name must keep compiling for
  // existing call sites and behave identically.
  ManualClock clock;
  const TimePoint before = clock.now();
  clock.advance(milliseconds(25));
  EXPECT_EQ(clock.now() - before, milliseconds(25));
}

}  // namespace
}  // namespace p2p::util
