// Kademlia discovery backend: routing-table unit tests, iterative lookup
// convergence on a simulated fabric, churn during lookups, and the
// mixed-version interop matrix (DHT peers among rendezvous-only peers).
#include "jxta/kad_routing_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "jxta/kad_service.h"
#include "jxta/peer.h"
#include "support/test_net.h"

namespace p2p {
namespace {

using jxta::DiscoveryType;
using jxta::KadRoutingTable;
using jxta::PeerId;
using util::Uuid;

util::TimePoint at_ms(std::int64_t ms) {
  return util::TimePoint{std::chrono::milliseconds{ms}};
}

PeerId pid(std::uint64_t hi, std::uint64_t lo) {
  return PeerId{Uuid{hi, lo}};
}

// Deterministic pseudo-random ids (no global RNG in tests).
PeerId derived_pid(int i) {
  return PeerId{Uuid::derive("kad-test-peer-" + std::to_string(i))};
}

// --- routing table ----------------------------------------------------------

TEST(KadRoutingTableTest, BucketIndexIsXorBitLength) {
  const Uuid self{0, 0};
  // Distance 1 -> bucket 0; distance 2..3 -> bucket 1; high bit -> 127.
  EXPECT_EQ(KadRoutingTable::bucket_index(self, Uuid{0, 1}), 0);
  EXPECT_EQ(KadRoutingTable::bucket_index(self, Uuid{0, 2}), 1);
  EXPECT_EQ(KadRoutingTable::bucket_index(self, Uuid{0, 3}), 1);
  EXPECT_EQ(KadRoutingTable::bucket_index(self, Uuid{0, 1ull << 63}), 63);
  EXPECT_EQ(KadRoutingTable::bucket_index(self, Uuid{1, 0}), 64);
  EXPECT_EQ(KadRoutingTable::bucket_index(self, Uuid{1ull << 63, 0}), 127);
  // Identical ids have no bucket.
  EXPECT_EQ(KadRoutingTable::bucket_index(self, self), -1);
  // XOR symmetry.
  EXPECT_EQ(KadRoutingTable::bucket_index(Uuid{5, 9}, Uuid{5, 12}),
            KadRoutingTable::bucket_index(Uuid{5, 12}, Uuid{5, 9}));
}

TEST(KadRoutingTableTest, CloserIsXorMetric) {
  const Uuid target{0, 8};
  EXPECT_TRUE(KadRoutingTable::closer(target, Uuid{0, 9}, Uuid{0, 0}));
  EXPECT_FALSE(KadRoutingTable::closer(target, Uuid{0, 0}, Uuid{0, 9}));
  // hi dominates lo.
  EXPECT_TRUE(KadRoutingTable::closer(target, Uuid{0, ~0ull}, Uuid{1, 8}));
  // Equal distance: not closer (strict weak ordering).
  EXPECT_FALSE(KadRoutingTable::closer(target, Uuid{0, 9}, Uuid{0, 9}));
}

TEST(KadRoutingTableTest, ObserveInsertRefreshAndFullBucket) {
  // Relative to self (0,0): ids 2..3 land in bucket 1, ids 4..7 in
  // bucket 2. With k=2, bucket 2 fills at two contacts.
  KadRoutingTable table(pid(0, 0), /*k=*/2);
  EXPECT_EQ(table.observe(pid(0, 0), at_ms(1), nullptr),
            KadRoutingTable::ObserveResult::kSelf);
  EXPECT_EQ(table.observe(pid(0, 2), at_ms(1), nullptr),
            KadRoutingTable::ObserveResult::kInserted);
  EXPECT_EQ(table.observe(pid(0, 3), at_ms(2), nullptr),
            KadRoutingTable::ObserveResult::kInserted);
  EXPECT_EQ(table.size(), 2u);

  // Re-observing a known contact refreshes, never duplicates.
  EXPECT_EQ(table.observe(pid(0, 2), at_ms(3), nullptr),
            KadRoutingTable::ObserveResult::kRefreshed);
  EXPECT_EQ(table.size(), 2u);

  // Fill bucket 2, then a third bucket-2 id reports the bucket's
  // least-recently-seen contact as the eviction candidate — and is NOT
  // inserted (never drop a live old contact for a newcomer).
  EXPECT_EQ(table.observe(pid(0, 6), at_ms(4), nullptr),
            KadRoutingTable::ObserveResult::kInserted);
  EXPECT_EQ(table.observe(pid(0, 7), at_ms(5), nullptr),
            KadRoutingTable::ObserveResult::kInserted);
  PeerId evict_candidate;
  EXPECT_EQ(table.observe(pid(0, 4), at_ms(6), &evict_candidate),
            KadRoutingTable::ObserveResult::kFull);
  EXPECT_EQ(evict_candidate, pid(0, 6));  // 6 seen before 7
  EXPECT_FALSE(table.contains(pid(0, 4)));

  // Refreshing rotates the LRU: now 7 is the candidate.
  EXPECT_EQ(table.observe(pid(0, 6), at_ms(7), nullptr),
            KadRoutingTable::ObserveResult::kRefreshed);
  EXPECT_EQ(table.observe(pid(0, 4), at_ms(8), &evict_candidate),
            KadRoutingTable::ObserveResult::kFull);
  EXPECT_EQ(evict_candidate, pid(0, 7));

  // The classic eviction rule: replace only once the LRU proved dead.
  table.replace(pid(0, 7), pid(0, 4), at_ms(9));
  EXPECT_FALSE(table.contains(pid(0, 7)));
  EXPECT_TRUE(table.contains(pid(0, 4)));
  EXPECT_EQ(table.size(), 4u);
}

TEST(KadRoutingTableTest, RemoveAndStale) {
  KadRoutingTable table(pid(0, 0), 4);
  (void)table.observe(pid(0, 1), at_ms(10), nullptr);
  (void)table.observe(pid(0, 2), at_ms(20), nullptr);
  (void)table.observe(pid(0, 9), at_ms(30), nullptr);

  const auto stale = table.stale(at_ms(25));
  ASSERT_EQ(stale.size(), 2u);
  EXPECT_TRUE(std::find(stale.begin(), stale.end(), pid(0, 1)) != stale.end());
  EXPECT_TRUE(std::find(stale.begin(), stale.end(), pid(0, 2)) != stale.end());

  table.remove(pid(0, 2));
  EXPECT_FALSE(table.contains(pid(0, 2)));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.stale(at_ms(25)).size(), 1u);
}

TEST(KadRoutingTableTest, ClosestMatchesBruteForce) {
  const PeerId self = derived_pid(0);
  KadRoutingTable table(self, 8);
  std::vector<PeerId> all;
  for (int i = 1; i <= 200; ++i) {
    const PeerId id = derived_pid(i);
    if (table.observe(id, at_ms(i), nullptr) ==
        KadRoutingTable::ObserveResult::kInserted) {
      all.push_back(id);
    }
  }
  // Most of the 200 land in the 2-3 shallowest buckets and are capped at
  // k=8 each; the deep buckets near self stay sparse. Enough survive to
  // make the closest() comparison meaningful.
  ASSERT_GE(all.size(), 2 * table.k());

  const Uuid target = Uuid::derive("kad-test-target");
  const auto got = table.closest(target, 8);
  ASSERT_EQ(got.size(), 8u);

  std::sort(all.begin(), all.end(),
            [&](const PeerId& a, const PeerId& b) {
              return KadRoutingTable::closer(target, a.uuid(), b.uuid());
            });
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], all[i]) << "rank " << i;
  }
}

// --- advertisement keys -----------------------------------------------------

TEST(KadKeyTest, IndexedAttributesDeriveStableKeys) {
  using jxta::KadService;
  const auto name_key = KadService::advertisement_key(1, "Name", "ps.quotes");
  ASSERT_TRUE(name_key.has_value());
  EXPECT_EQ(name_key, KadService::advertisement_key(1, "Name", "ps.quotes"));

  // Id-like attributes share one canonical class: a publisher indexing
  // field("ID") is found by queries spelled "ID", "Id" or "PID" alike.
  const std::string urn = "urn:jxta:uuid-0011";
  EXPECT_EQ(KadService::advertisement_key(0, "ID", urn),
            KadService::advertisement_key(0, "PID", urn));
  EXPECT_EQ(KadService::advertisement_key(2, "ID", urn),
            KadService::advertisement_key(2, "Id", urn));

  // Different type / attr / value never collide onto the same key.
  EXPECT_NE(KadService::advertisement_key(1, "Name", "ps.quotes"),
            KadService::advertisement_key(2, "Name", "ps.quotes"));
  EXPECT_NE(KadService::advertisement_key(1, "Name", "x"),
            KadService::advertisement_key(1, "ID", "x"));
}

TEST(KadKeyTest, UnindexedQueriesHaveNoKey) {
  using jxta::KadService;
  // Globs match many values — they stay on the flood.
  EXPECT_FALSE(KadService::advertisement_key(1, "Name", "ps.*").has_value());
  EXPECT_FALSE(KadService::advertisement_key(1, "Name", "a?b").has_value());
  EXPECT_FALSE(KadService::advertisement_key(1, "Name", "[ab]").has_value());
  // Unindexed attributes and empty values too.
  EXPECT_FALSE(KadService::advertisement_key(1, "Keywords", "x").has_value());
  EXPECT_FALSE(KadService::advertisement_key(1, "Name", "").has_value());
  EXPECT_FALSE(KadService::advertisement_key(1, "", "x").has_value());
}

// --- integration on the simulated fabric ------------------------------------

jxta::PeerConfig kad_config(const std::string& name, bool rendezvous,
                            const std::vector<std::string>& seeds) {
  jxta::PeerConfig config;
  config.name = name;
  config.rendezvous = rendezvous;
  config.heartbeat = std::chrono::milliseconds(100);
  config.rdv.lease_ttl = std::chrono::milliseconds(2000);
  for (const auto& seed : seeds) {
    config.seed_rendezvous.emplace_back("inproc", seed);
  }
  config.kad.enabled = true;
  config.kad.rpc_timeout = std::chrono::milliseconds(300);
  return config;
}

jxta::PeerGroupAdvertisement group_adv(const std::string& name,
                                       const jxta::Peer& creator) {
  jxta::PeerGroupAdvertisement adv;
  adv.gid = jxta::PeerGroupId::derive("kad-test-group-" + name);
  adv.creator = creator.id();
  adv.name = name;
  adv.app = "test";
  return adv;
}

TEST(KadIntegrationTest, LookupResolvesAdvertisementThroughDht) {
  testing::TestNet net;
  net.add_peer(kad_config("rdv", true, {}));
  jxta::Peer& pub = net.add_peer(kad_config("pub", false, {"rdv"}));
  jxta::Peer& sub = net.add_peer(kad_config("sub", false, {"rdv"}));

  ASSERT_TRUE(testing::wait_until(
      [&] { return pub.kad()->ready() && sub.kad()->ready(); }));

  pub.discovery().remote_publish(group_adv("ps.kad-target", pub),
                                 DiscoveryType::kGroup);
  ASSERT_TRUE(testing::wait_until([&] {
    return pub.metrics().snapshot().counter("jxta.dht.stores") > 0;
  }));

  sub.discovery().get_remote(DiscoveryType::kGroup, "Name", "ps.kad-target");
  ASSERT_TRUE(testing::wait_until([&] {
    return !sub.discovery()
                .get_local(DiscoveryType::kGroup, "Name", "ps.kad-target")
                .empty();
  }));

  // The query went through the DHT plane, not the flood.
  const auto snap = sub.metrics().snapshot();
  EXPECT_GT(snap.counter("jxta.dht.lookups"), 0u);
  EXPECT_GT(snap.counter("jxta.dht.rpcs_sent"), 0u);
}

TEST(KadIntegrationTest, LookupSurvivesChurn) {
  testing::TestNet net;
  net.add_peer(kad_config("rdv", true, {}));
  jxta::Peer& pub = net.add_peer(kad_config("pub", false, {"rdv"}));
  jxta::Peer& sub = net.add_peer(kad_config("sub", false, {"rdv"}));
  jxta::Peer& churn = net.add_peer(kad_config("churn", false, {"rdv"}));

  ASSERT_TRUE(testing::wait_until([&] {
    return pub.kad()->ready() && sub.kad()->ready() &&
           churn.kad()->ready() && sub.kad()->routing_size() >= 2;
  }));

  // Kill a contact the searcher knows, then publish and search: RPCs to
  // the dead peer time out and the lookup routes around it.
  churn.stop();
  pub.discovery().remote_publish(group_adv("ps.churny", pub),
                                 DiscoveryType::kGroup);
  sub.discovery().get_remote(DiscoveryType::kGroup, "Name", "ps.churny");
  ASSERT_TRUE(testing::wait_until(
      [&] {
        return !sub.discovery()
                    .get_local(DiscoveryType::kGroup, "Name", "ps.churny")
                    .empty();
      },
      std::chrono::milliseconds(15000)));
}

TEST(KadIntegrationTest, DhtPeerFallsBackToFloodForLegacyPublisher) {
  testing::TestNet net;
  // Rendezvous and publisher run WITHOUT the DHT (old builds); only the
  // searcher is new. Its lookup must miss, then resolve via the flood
  // under the same query id.
  net.add_peer("rdv", /*rendezvous=*/true);
  jxta::Peer& legacy = net.add_peer("legacy", false, false, {"rdv"});
  jxta::Peer& finder = net.add_peer(kad_config("finder", false, {"rdv"}));
  jxta::Peer& buddy = net.add_peer(kad_config("buddy", false, {"rdv"}));

  // The finder's DHT becomes ready via its DHT-capable buddy (the legacy
  // peers never join the routing table).
  ASSERT_TRUE(testing::wait_until(
      [&] { return finder.kad()->ready() && buddy.kad()->ready(); }));
  EXPECT_FALSE(finder.kad() == nullptr);
  EXPECT_EQ(legacy.kad(), nullptr);

  legacy.discovery().remote_publish(group_adv("ps.legacy-only", legacy),
                                    DiscoveryType::kGroup);

  // Record the query id of every group answer; the fallback answer must
  // arrive under the id get_remote returned (one logical query).
  std::mutex seen_mu;
  std::vector<util::Uuid> seen_ids;
  const auto listener = finder.discovery().add_listener(
      [&](const jxta::DiscoveryEvent& event) {
        if (event.type != DiscoveryType::kGroup) return;
        const std::lock_guard<std::mutex> lock(seen_mu);
        seen_ids.push_back(event.query_id);
      });
  const util::Uuid query_id = finder.discovery().get_remote(
      DiscoveryType::kGroup, "Name", "ps.legacy-only");
  ASSERT_TRUE(testing::wait_until(
      [&] {
        const std::lock_guard<std::mutex> lock(seen_mu);
        return std::find(seen_ids.begin(), seen_ids.end(), query_id) !=
               seen_ids.end();
      },
      std::chrono::milliseconds(15000)));
  finder.discovery().remove_listener(listener);

  // Deterministic fallback accounting: the DHT missed exactly where it
  // had to, and the flood answered under the original query id.
  EXPECT_GE(finder.metrics().snapshot().counter(
                "jxta.discovery.flood_fallbacks"),
            1u);
}

TEST(KadIntegrationTest, LegacySearcherStillFindsDhtPublisher) {
  testing::TestNet net;
  net.add_peer("rdv", /*rendezvous=*/true);
  jxta::Peer& modern = net.add_peer(kad_config("modern", false, {"rdv"}));
  jxta::Peer& buddy = net.add_peer(kad_config("buddy", false, {"rdv"}));
  jxta::Peer& legacy = net.add_peer("legacy", false, false, {"rdv"});

  ASSERT_TRUE(testing::wait_until(
      [&] { return modern.kad()->ready() && buddy.kad()->ready(); }));

  // The modern peer publishes through the DHT (no flood push for groups),
  // but its local cache still answers flooded queries — an old searcher
  // resolves exactly as before.
  modern.discovery().remote_publish(group_adv("ps.modern", modern),
                                    DiscoveryType::kGroup);
  legacy.discovery().get_remote(DiscoveryType::kGroup, "Name", "ps.modern");
  ASSERT_TRUE(testing::wait_until([&] {
    return !legacy.discovery()
                .get_local(DiscoveryType::kGroup, "Name", "ps.modern")
                .empty();
  }));
}

TEST(KadIntegrationTest, DirectedAndGlobQueriesStayOnTheFlood) {
  testing::TestNet net;
  net.add_peer(kad_config("rdv", true, {}));
  jxta::Peer& pub = net.add_peer(kad_config("pub", false, {"rdv"}));
  jxta::Peer& sub = net.add_peer(kad_config("sub", false, {"rdv"}));
  ASSERT_TRUE(testing::wait_until(
      [&] { return pub.kad()->ready() && sub.kad()->ready(); }));

  pub.discovery().publish(group_adv("ps.globbed", pub), DiscoveryType::kGroup);
  const auto before = sub.metrics().snapshot().counter("jxta.dht.lookups");
  sub.discovery().get_remote(DiscoveryType::kGroup, "Name", "ps.glob*");
  ASSERT_TRUE(testing::wait_until([&] {
    return !sub.discovery()
                .get_local(DiscoveryType::kGroup, "Name", "ps.globbed")
                .empty();
  }));
  // A glob has no DHT key: no lookup was started for it.
  EXPECT_EQ(sub.metrics().snapshot().counter("jxta.dht.lookups"), before);
}

}  // namespace
}  // namespace p2p
