// Tests for the runtime lock-order (potential deadlock) tracker.
//
// The API-level tests drive the tracker hooks directly with fake mutex
// addresses, so they run in every build configuration. The end-to-end test
// uses real util::Mutex instances and therefore needs the hooks to be wired
// into the wrapper (-DP2P_DEADLOCK_DEBUG=ON); it skips elsewhere.
#include "util/lock_order.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace p2p::util {
namespace {

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lock_order::reset_graph_for_testing();
    prev_ = lock_order::set_handler(
        [this](const lock_order::Report& r) { reports_.push_back(r); });
  }

  void TearDown() override {
    lock_order::set_handler(std::move(prev_));
    lock_order::reset_graph_for_testing();
  }

  // Simulates a blocking acquisition/release against the tracker.
  static void sim_lock(const void* id, const char* name) {
    lock_order::pre_lock(id, name);
    lock_order::post_lock(id, name);
  }
  static void sim_unlock(const void* id) { lock_order::post_unlock(id); }

  std::vector<lock_order::Report> reports_;
  lock_order::Handler prev_;
};

TEST_F(LockOrderTest, InversionFiresWithBothChains) {
  int a = 0;
  int b = 0;
  // Establish A -> B.
  sim_lock(&a, "A");
  sim_lock(&b, "B");
  sim_unlock(&b);
  sim_unlock(&a);
  ASSERT_TRUE(reports_.empty());
  // Invert: holding B, acquire A.
  sim_lock(&b, "B");
  lock_order::pre_lock(&a, "A");
  ASSERT_EQ(reports_.size(), 1u);
  const lock_order::Report& r = reports_[0];
  EXPECT_FALSE(r.reentrant);
  EXPECT_EQ(r.this_chain, (std::vector<std::string>{"B", "A"}));
  EXPECT_EQ(r.prior_chain, (std::vector<std::string>{"A", "B"}));
  EXPECT_NE(r.message.find("POTENTIAL DEADLOCK"), std::string::npos);
  EXPECT_NE(r.message.find("\"A\""), std::string::npos);
  EXPECT_NE(r.message.find("\"B\""), std::string::npos);
  sim_unlock(&b);
}

TEST_F(LockOrderTest, ConsistentOrderNeverFires) {
  int a = 0;
  int b = 0;
  int c = 0;
  for (int i = 0; i < 3; ++i) {
    sim_lock(&a, "A");
    sim_lock(&b, "B");
    sim_lock(&c, "C");
    sim_unlock(&c);
    sim_unlock(&b);
    sim_unlock(&a);
  }
  EXPECT_TRUE(reports_.empty());
}

TEST_F(LockOrderTest, TransitiveCycleFires) {
  int a = 0;
  int b = 0;
  int c = 0;
  // A -> B and B -> C on separate occasions...
  sim_lock(&a, "A");
  sim_lock(&b, "B");
  sim_unlock(&b);
  sim_unlock(&a);
  sim_lock(&b, "B");
  sim_lock(&c, "C");
  sim_unlock(&c);
  sim_unlock(&b);
  // ...then C -> A closes the three-lock cycle.
  sim_lock(&c, "C");
  lock_order::pre_lock(&a, "A");
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].message.find("inverted order path"),
            std::string::npos);
  sim_unlock(&c);
}

TEST_F(LockOrderTest, ReentrantAcquisitionFires) {
  int a = 0;
  sim_lock(&a, "A");
  lock_order::pre_lock(&a, "A");
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_TRUE(reports_[0].reentrant);
  EXPECT_EQ(reports_[0].this_chain, (std::vector<std::string>{"A", "A"}));
  EXPECT_NE(reports_[0].message.find("re-entrant"), std::string::npos);
  sim_unlock(&a);
}

TEST_F(LockOrderTest, TryLockRecordsOrderButNeverReports) {
  int a = 0;
  int b = 0;
  // A -> B recorded through a successful try_lock while holding A.
  sim_lock(&a, "A");
  lock_order::post_try_lock(&b, "B");
  sim_unlock(&b);
  sim_unlock(&a);
  // A try_lock that would invert the order must not report either (it
  // cannot block), even though the inverted edge exists.
  sim_lock(&b, "B");
  lock_order::post_try_lock(&a, "A");
  EXPECT_TRUE(reports_.empty());
  sim_unlock(&a);
  // A *blocking* inversion against the try-recorded edge does report.
  lock_order::pre_lock(&a, "A");
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_EQ(reports_[0].prior_chain, (std::vector<std::string>{"A", "B"}));
  sim_unlock(&b);
}

TEST_F(LockOrderTest, EachInvertedPairReportsOnce) {
  int a = 0;
  int b = 0;
  sim_lock(&a, "A");
  sim_lock(&b, "B");
  sim_unlock(&b);
  sim_unlock(&a);
  for (int i = 0; i < 3; ++i) {
    sim_lock(&b, "B");
    lock_order::pre_lock(&a, "A");
    sim_unlock(&b);
  }
  EXPECT_EQ(reports_.size(), 1u);
}

TEST_F(LockOrderTest, OutOfOrderReleaseIsTracked) {
  int a = 0;
  int b = 0;
  int c = 0;
  sim_lock(&a, "A");
  sim_lock(&b, "B");
  sim_unlock(&a);  // release the older lock first (MutexLock::unlock path)
  // Holding only B now: C is acquired under B alone, so no A -> C edge.
  sim_lock(&c, "C");
  sim_unlock(&c);
  sim_unlock(&b);
  // C -> A closes no cycle (only A -> B and B -> C exist... C -> A does:
  // A -> B -> C -> A). But A was NOT held when C was acquired, so the only
  // path is via B; holding C and acquiring B is the inversion to check.
  sim_lock(&c, "C");
  lock_order::pre_lock(&b, "B");
  EXPECT_EQ(reports_.size(), 1u);
  sim_unlock(&c);
}

TEST_F(LockOrderTest, DestroyedMutexDropsItsOrderingConstraints) {
  int a = 0;
  int b = 0;
  sim_lock(&a, "A");
  sim_lock(&b, "B");
  sim_unlock(&b);
  sim_unlock(&a);
  lock_order::on_destroy(&b);
  // With B forgotten, B -> A (a recycled address) is a fresh ordering.
  sim_lock(&b, "B2");
  sim_lock(&a, "A");
  sim_unlock(&a);
  sim_unlock(&b);
  EXPECT_TRUE(reports_.empty());
}

TEST_F(LockOrderTest, RealMutexEndToEnd) {
  if (!lock_order::enabled()) {
    GTEST_SKIP() << "needs -DP2P_DEADLOCK_DEBUG=ON";
  }
  Mutex a{"e2e-A"};
  Mutex b{"e2e-B"};
  // One thread takes A then B; after it is gone, this thread takes B then
  // A. No actual deadlock ever happens — the tracker reports the inverted
  // order anyway (that is the point: it fires on the first observable
  // inversion, not on the lucky run that hangs).
  std::thread first([&] {
    const MutexLock la(a);
    const MutexLock lb(b);
  });
  first.join();
  {
    const MutexLock lb(b);
    const MutexLock la(a);
  }
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_FALSE(reports_[0].reentrant);
  EXPECT_EQ(reports_[0].this_chain,
            (std::vector<std::string>{"e2e-B", "e2e-A"}));
  EXPECT_EQ(reports_[0].prior_chain,
            (std::vector<std::string>{"e2e-A", "e2e-B"}));
}

TEST_F(LockOrderTest, RealCondVarWaitReleasesHeldStack) {
  if (!lock_order::enabled()) {
    GTEST_SKIP() << "needs -DP2P_DEADLOCK_DEBUG=ON";
  }
  // cv.wait unlocks through Mutex::unlock, so while a waiter sleeps its
  // held-stack must not pin the mutex (a notifier locking other mutexes
  // first would otherwise look like an inversion).
  Mutex m{"e2e-cv-m"};
  Mutex other{"e2e-cv-other"};
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(m);
    while (!ready) cv.wait(m);
  });
  {
    // Deliberately acquire in the order other -> m; with the waiter parked
    // in wait(m) this is the FIRST recorded ordering between the two.
    const MutexLock lo(other);
    const MutexLock lm(m);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(reports_.empty());
}

}  // namespace
}  // namespace p2p::util
