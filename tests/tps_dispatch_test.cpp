// Tests for the receive-path delivery executor (tps/dispatch.h): the
// striped worker pool in isolation, then its integration into TpsSession —
// pooled delivery, per-subscriber FIFO, cancellation quiescence, bounded
// queue accounting and the inline default.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "events/ski_rental.h"
#include "support/test_net.h"
#include "support/timing.h"
#include "tps/dispatch.h"
#include "tps/tps.h"

namespace p2p::tps {
namespace {

using events::SkiRental;
using p2p::testing::settle;
using p2p::testing::TestNet;
using p2p::testing::wait_until;

std::unique_ptr<DeliveryExecutor> make_executor(std::size_t workers,
                                                std::size_t capacity) {
  // Default-constructed obs handles write to scratch cells.
  return std::make_unique<DeliveryExecutor>(workers, capacity, obs::Counter(),
                                            obs::Gauge(), obs::Gauge());
}

TpsConfig fast_config() {
  TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(300);
  config.finder_period = std::chrono::milliseconds(150);
  return config;
}

TpsConfig pooled_config(std::size_t workers = 2) {
  TpsConfig config = fast_config();
  config.delivery_workers = workers;
  config.delivery_queue_capacity = 1024;
  return config;
}

// --- executor unit tests -----------------------------------------------------

TEST(DeliveryExecutorTest, SameKeyTasksRunInSubmissionOrder) {
  auto ex = make_executor(4, 4096);
  constexpr int kKeys = 4;
  constexpr int kPerKey = 250;
  std::mutex mu;
  std::vector<std::vector<int>> seen(kKeys);
  for (int i = 0; i < kPerKey; ++i) {
    for (int key = 0; key < kKeys; ++key) {
      ASSERT_TRUE(ex->submit(static_cast<std::uint64_t>(key), [&, key, i] {
        const std::lock_guard lock(mu);
        seen[static_cast<std::size_t>(key)].push_back(i);
      }));
    }
  }
  ex->flush();
  for (int key = 0; key < kKeys; ++key) {
    const auto& order = seen[static_cast<std::size_t>(key)];
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kPerKey));
    for (int i = 0; i < kPerKey; ++i) EXPECT_EQ(order[std::size_t(i)], i);
  }
  EXPECT_EQ(ex->executed(), static_cast<std::uint64_t>(kKeys * kPerKey));
  EXPECT_EQ(ex->dropped(), 0u);
}

TEST(DeliveryExecutorTest, DistinctKeysRunConcurrently) {
  auto ex = make_executor(2, 64);
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<bool> other_ran{false};
  ASSERT_TRUE(ex->submit(0, [&] {
    entered = true;
    wait_until([&] { return release.load(); });
  }));
  ASSERT_TRUE(wait_until([&] { return entered.load(); }));
  // Key 1 lands on the other worker and must run while key 0 is blocked.
  ASSERT_TRUE(ex->submit(1, [&] { other_ran = true; }));
  EXPECT_TRUE(wait_until([&] { return other_ran.load(); }));
  release = true;
  ex->flush();
}

TEST(DeliveryExecutorTest, FullQueueDropsAndCounts) {
  auto ex = make_executor(1, 2);
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  ASSERT_TRUE(ex->submit(0, [&] {
    entered = true;
    wait_until([&] { return release.load(); });
  }));
  // Wait for the blocker to be *running* (off the queue) so the two
  // accepted tasks below account for the whole capacity.
  ASSERT_TRUE(wait_until([&] { return entered.load(); }));
  EXPECT_TRUE(ex->submit(0, [&] { ++ran; }));
  EXPECT_TRUE(ex->submit(0, [&] { ++ran; }));
  EXPECT_FALSE(ex->submit(0, [&] { ++ran; }));  // over capacity: dropped
  EXPECT_EQ(ex->dropped(), 1u);
  EXPECT_EQ(ex->queue_depth(), 2u);
  EXPECT_EQ(ex->queue_hwm(), 2u);
  release = true;
  ex->flush();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(ex->queue_depth(), 0u);
  EXPECT_EQ(ex->executed(), 3u);
}

TEST(DeliveryExecutorTest, FlushWaitsForSubmittedTasks) {
  auto ex = make_executor(3, 4096);
  std::atomic<int> ran{0};
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        ex->submit(static_cast<std::uint64_t>(i), [&] { ++ran; }));
  }
  ex->flush();
  EXPECT_EQ(ran.load(), 300);
}

TEST(DeliveryExecutorTest, ShutdownDrainsQueueThenRejects) {
  auto ex = make_executor(1, 1024);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ex->submit(0, [&] { ++ran; }));
  }
  ex->shutdown();
  EXPECT_EQ(ran.load(), 50);  // queued work ran before the workers exited
  EXPECT_FALSE(ex->submit(0, [&] { ++ran; }));
  EXPECT_EQ(ex->dropped(), 1u);
  ex->shutdown();  // idempotent
  EXPECT_EQ(ran.load(), 50);
}

// --- session integration -----------------------------------------------------

TEST(TpsDispatchTest, PooledDeliveryRunsEveryCallbackOnce) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> sub_engine(alice, pooled_config());
  auto sub_iface = sub_engine.new_interface();
  std::atomic<int> count{0};
  auto sub = sub_iface.subscribe([&](const SkiRental&) { ++count; });
  TpsEngine<SkiRental> pub_engine(bob, fast_config());
  auto pub = pub_engine.new_interface();
  for (int i = 0; i < 10; ++i) {
    pub.publish(SkiRental("S", static_cast<float>(i), "B", 1));
  }
  EXPECT_TRUE(wait_until([&] { return count.load() == 10; }));
  sub_iface.flush();
  EXPECT_EQ(count.load(), 10);
  const TpsStats stats = sub_iface.stats();
  EXPECT_EQ(stats.deliveries_pooled, 10u);
  EXPECT_EQ(stats.deliveries_inline, 0u);
  EXPECT_EQ(stats.delivery_drops, 0u);
  EXPECT_EQ(sub_iface.delivery_queue_depth(), 0u);
}

TEST(TpsDispatchTest, SubscribersSeeTheSameOrderUnderMultiWorkerPool) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> sub_engine(alice, pooled_config(3));
  auto sub_iface = sub_engine.new_interface();
  std::mutex mu;
  std::vector<int> seq_a;
  std::vector<int> seq_b;
  auto sub_a = sub_iface.subscribe([&](const SkiRental& e) {
    const std::lock_guard lock(mu);
    seq_a.push_back(static_cast<int>(e.price()));
  });
  auto sub_b = sub_iface.subscribe([&](const SkiRental& e) {
    const std::lock_guard lock(mu);
    seq_b.push_back(static_cast<int>(e.price()));
  });
  TpsEngine<SkiRental> pub_engine(bob, fast_config());
  auto pub = pub_engine.new_interface();
  constexpr int kEvents = 40;
  for (int i = 0; i < kEvents; ++i) {
    pub.publish(SkiRental("S", static_cast<float>(i), "B", 1));
  }
  EXPECT_TRUE(wait_until([&] {
    const std::lock_guard lock(mu);
    return seq_a.size() == kEvents && seq_b.size() == kEvents;
  }));
  // Dispatch striped across 3 workers must preserve each subscriber's
  // submission order, so the two subscribers observe identical sequences.
  const std::lock_guard lock(mu);
  EXPECT_EQ(seq_a, seq_b);
}

TEST(TpsDispatchTest, CancelWaitsOutRunningCallbackAndStopsDelivery) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> sub_engine(alice, pooled_config());
  auto sub_iface = sub_engine.new_interface();
  std::atomic<int> count{0};
  std::atomic<int> sentinel{0};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  auto sub = sub_iface.subscribe([&](const SkiRental&) {
    ++count;
    entered = true;
    wait_until([&] { return release.load(); });
  });
  auto keep = sub_iface.subscribe([&](const SkiRental&) { ++sentinel; });
  TpsEngine<SkiRental> pub_engine(bob, fast_config());
  auto pub = pub_engine.new_interface();
  pub.publish(SkiRental("S", 1, "B", 1));
  ASSERT_TRUE(wait_until([&] { return entered.load(); }));
  // More events queue up behind the blocked callback on its worker.
  for (int i = 0; i < 4; ++i) pub.publish(SkiRental("S", 2, "B", 1));
  std::atomic<bool> cancelled{false};
  std::thread canceller([&] {
    sub.cancel();  // must block: the callback is mid-flight
    cancelled = true;
  });
  // No completion signal exists for "cancel() is now parked in its
  // quiescence wait"; give it time to get there.
  settle(std::chrono::milliseconds(100));
  EXPECT_FALSE(cancelled.load());
  release = true;
  canceller.join();
  // After cancel() returns nothing more may run, even though events were
  // queued. The sentinel proves the events themselves kept flowing.
  EXPECT_TRUE(wait_until([&] { return sentinel.load() == 5; }));
  sub_iface.flush();
  EXPECT_EQ(count.load(), 1);
}

TEST(TpsDispatchTest, CallbackMayCancelItsOwnSubscription) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> sub_engine(alice, pooled_config());
  auto sub_iface = sub_engine.new_interface();
  std::atomic<int> count{0};
  std::atomic<int> sentinel{0};
  std::optional<Subscription> sub;
  sub.emplace(sub_iface.subscribe([&](const SkiRental&) {
    ++count;
    sub->cancel();  // self-cancel must not deadlock on quiescence
  }));
  auto keep = sub_iface.subscribe([&](const SkiRental&) { ++sentinel; });
  TpsEngine<SkiRental> pub_engine(bob, fast_config());
  auto pub = pub_engine.new_interface();
  pub.publish(SkiRental("S", 1, "B", 1));
  EXPECT_TRUE(wait_until([&] { return count.load() == 1; }));
  pub.publish(SkiRental("S", 2, "B", 1));
  EXPECT_TRUE(wait_until([&] { return sentinel.load() == 2; }));
  sub_iface.flush();
  EXPECT_EQ(count.load(), 1);
}

TEST(TpsDispatchTest, SlowSubscriberDoesNotStallFastOne) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> sub_engine(alice, pooled_config(2));
  auto sub_iface = sub_engine.new_interface();
  std::atomic<int> slow_count{0};
  std::atomic<int> fast_count{0};
  std::atomic<bool> release{false};
  auto slow = sub_iface.subscribe([&](const SkiRental&) {
    wait_until([&] { return release.load(); });
    ++slow_count;
  });
  auto fast = sub_iface.subscribe([&](const SkiRental&) { ++fast_count; });
  TpsEngine<SkiRental> pub_engine(bob, fast_config());
  auto pub = pub_engine.new_interface();
  constexpr int kEvents = 5;
  for (int i = 0; i < kEvents; ++i) {
    pub.publish(SkiRental("S", static_cast<float>(i), "B", 1));
  }
  // The fast subscriber drains all events while the slow one is still
  // stuck in its first callback — the stall does not cross workers.
  EXPECT_TRUE(wait_until([&] { return fast_count.load() == kEvents; }));
  EXPECT_LT(slow_count.load(), kEvents);
  release = true;
  EXPECT_TRUE(wait_until([&] { return slow_count.load() == kEvents; }));
}

TEST(TpsDispatchTest, InlineDefaultCountsSynchronousDeliveries) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");
  TpsEngine<SkiRental> sub_engine(alice, fast_config());
  auto sub_iface = sub_engine.new_interface();
  std::atomic<int> count{0};
  auto sub = sub_iface.subscribe([&](const SkiRental&) { ++count; });
  TpsEngine<SkiRental> pub_engine(bob, fast_config());
  auto pub = pub_engine.new_interface();
  for (int i = 0; i < 3; ++i) {
    pub.publish(SkiRental("S", static_cast<float>(i), "B", 1));
  }
  EXPECT_TRUE(wait_until([&] { return count.load() == 3; }));
  const TpsStats stats = sub_iface.stats();
  EXPECT_EQ(stats.deliveries_inline, 3u);
  EXPECT_EQ(stats.deliveries_pooled, 0u);
  EXPECT_EQ(stats.delivery_drops, 0u);
  EXPECT_EQ(sub_iface.delivery_queue_depth(), 0u);
}

TEST(TpsDispatchTest, BuilderValidatesPoolKnobs) {
  EXPECT_THROW((void)TpsConfig::Builder().delivery_pool(65).build(),
               PsException);
  EXPECT_THROW((void)TpsConfig::Builder().delivery_pool(2, 0).build(),
               PsException);
  const TpsConfig pooled = TpsConfig::Builder().delivery_pool(4, 512).build();
  EXPECT_EQ(pooled.delivery_workers, 4u);
  EXPECT_EQ(pooled.delivery_queue_capacity, 512u);
  const TpsConfig off =
      TpsConfig::Builder().delivery_pool(4).no_delivery_pool().build();
  EXPECT_EQ(off.delivery_workers, 0u);
  const TpsConfig no_ring = TpsConfig::Builder().no_dedup_ring().build();
  EXPECT_FALSE(no_ring.dedup_ring);
}

}  // namespace
}  // namespace p2p::tps
