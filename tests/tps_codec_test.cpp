// The wire codec seam (DESIGN.md "The wire codec"): DynamicEvent's two
// storage modes, the xml/binary codec pair, per-channel negotiation, and
// the interop matrix across mixed-version groups.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "events/ski_rental.h"
#include "support/test_net.h"
#include "support/timing.h"
#include "tps/advertisements.h"
#include "tps/dynamic.h"
#include "tps/encode_cache.h"
#include "tps/tps.h"
#include "tps/xml_event.h"

namespace p2p::tps {
namespace {

using events::SkiRental;
using p2p::testing::TestNet;
using p2p::testing::wait_until;
using util::Bytes;
using util::DecodeError;
using util::DecodeLimits;

TpsConfig fast_config() {
  TpsConfig config;
  config.adv_search_timeout = std::chrono::milliseconds(300);
  config.finder_period = std::chrono::milliseconds(150);
  return config;
}

std::shared_ptr<const Bytes> buffer_of(Bytes bytes) {
  return std::make_shared<const Bytes>(std::move(bytes));
}

// --- DynamicEvent: owned mode, view mode, copy-on-write ----------------------

TEST(DynamicEventTest, OwnedModeSetGetHasFields) {
  DynamicEvent e("Quote");
  e.set("sym", "A").set("px", "9");
  EXPECT_EQ(e.type_name(), "Quote");
  EXPECT_EQ(e.get("sym"), "A");
  EXPECT_EQ(e.get("px"), "9");
  EXPECT_TRUE(e.has("sym"));
  EXPECT_FALSE(e.has("vol"));
  EXPECT_EQ(e.get("vol"), "");  // runtime looseness: absent reads as ""
  const auto fields = e.fields();
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].first, "px");  // sorted by key
  EXPECT_EQ(fields[1].first, "sym");
}

TEST(DynamicEventTest, ViewModePinsDecodeBufferForEventLifetime) {
  serial::TypeRegistry registry;
  register_dynamic_event_type("Quote", {}, registry);
  DynamicEvent original("Quote");
  original.set("sym", "ABC").set("px", "123.45");

  auto payload = buffer_of(binary_codec().encode(registry, original));
  CodecResult decoded = binary_codec().decode(registry, payload, {});
  ASSERT_TRUE(decoded.ok());
  // Drop every external reference to the wire buffer: the event's pin must
  // keep the bytes its views point into alive.
  payload.reset();
  const auto* view = dynamic_cast<const DynamicEvent*>(decoded.event.get());
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->get("sym"), "ABC");
  EXPECT_EQ(view->get("px"), "123.45");
  EXPECT_EQ(view->field_count(), 2u);
  EXPECT_EQ(*view, original);  // equality is mode-blind
}

TEST(DynamicEventTest, SetOnViewedEventCopiesOnWrite) {
  serial::TypeRegistry registry;
  register_dynamic_event_type("Quote", {}, registry);
  DynamicEvent original("Quote");
  original.set("sym", "A");
  const auto payload = buffer_of(binary_codec().encode(registry, original));
  const CodecResult decoded = binary_codec().decode(registry, payload, {});
  ASSERT_TRUE(decoded.ok());

  DynamicEvent copy =
      *dynamic_cast<const DynamicEvent*>(decoded.event.get());
  copy.set("px", "9");  // materializes: views copied out, then mutated
  EXPECT_EQ(copy.get("sym"), "A");
  EXPECT_EQ(copy.get("px"), "9");
  EXPECT_EQ(copy.field_count(), 2u);
  // The immutable delivered instance is untouched.
  const auto* view = dynamic_cast<const DynamicEvent*>(decoded.event.get());
  EXPECT_EQ(view->field_count(), 1u);
}

TEST(DynamicEventTest, XmlFormRoundTrips) {
  DynamicEvent e("WeatherReport");
  e.set("resort", "Verbier").set("snow_cm", "60");
  const DynamicEvent back = DynamicEvent::from_xml(e.to_xml());
  EXPECT_EQ(back, e);
}

TEST(DynamicEventTest, XmlEventAliasStillCompiles) {
  // The deprecated surface: xml_event.h forwards to the codec-neutral one.
  XmlEvent e("Quote");
  e.set("sym", "A");
  static_assert(std::is_same_v<XmlEvent, DynamicEvent>);
  EXPECT_EQ(e.get("sym"), "A");
}

// --- codec registry ----------------------------------------------------------

TEST(CodecRegistryTest, LookupByNameAndStableIndices) {
  EXPECT_EQ(find_codec(kCodecXml), &xml_codec());
  EXPECT_EQ(find_codec(kCodecBinary), &binary_codec());
  EXPECT_EQ(find_codec("zstd"), nullptr);
  EXPECT_EQ(xml_codec().name(), "xml");
  EXPECT_EQ(binary_codec().name(), "binary");
  EXPECT_NE(xml_codec().index(), binary_codec().index());
  EXPECT_LT(xml_codec().index(), kCodecCount);
  EXPECT_LT(binary_codec().index(), kCodecCount);
  EXPECT_EQ(supported_codec_names(), "xml, binary");
}

TEST(CodecRegistryTest, XmlCodecIsByteIdenticalToTaggedEncoding) {
  // The compatibility anchor: a pre-codec peer's "tps:event" bytes ARE the
  // xml codec's bytes, in both directions.
  serial::TypeRegistry registry;
  serial::register_event_with_ancestors<SkiRental>(registry);
  const SkiRental offer("S", 1.0f, "B", 2.0f);
  EXPECT_EQ(xml_codec().encode(registry, offer),
            registry.encode_tagged(offer));
}

// --- binary codec round trips ------------------------------------------------

TEST(BinaryCodecTest, StaticEventRoundTrips) {
  serial::TypeRegistry registry;
  serial::register_event_with_ancestors<SkiRental>(registry);
  const SkiRental offer("shop", 42.5f, "brand", 3.0f);
  const auto payload = buffer_of(binary_codec().encode(registry, offer));
  const CodecResult decoded = binary_codec().decode(registry, payload, {});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.type_name, "SkiRental");
  const auto* back = dynamic_cast<const SkiRental*>(decoded.event.get());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(*back, offer);
}

TEST(BinaryCodecTest, DynamicEventRoundTripsManyFields) {
  serial::TypeRegistry registry;
  register_dynamic_event_type("Big", {}, registry);
  DynamicEvent e("Big");
  for (int i = 0; i < 64; ++i) {
    e.set("k" + std::to_string(i), std::string(i, 'v'));
  }
  const auto payload = buffer_of(binary_codec().encode(registry, e));
  const CodecResult decoded = binary_codec().decode(registry, payload, {});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*dynamic_cast<const DynamicEvent*>(decoded.event.get()), e);
}

// --- binary codec: classified failures ---------------------------------------

TEST(BinaryCodecTest, TruncatedHeaderIsClassified) {
  serial::TypeRegistry registry;
  const CodecResult decoded =
      binary_codec().decode(registry, buffer_of(Bytes{0x01}), {});
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, DecodeError::kTruncated);
}

TEST(BinaryCodecTest, UnknownVersionIsRejected) {
  serial::TypeRegistry registry;
  register_dynamic_event_type("Quote", {}, registry);
  DynamicEvent e("Quote");
  Bytes frame = binary_codec().encode(registry, e);
  frame[0] = 0x7f;
  const CodecResult decoded =
      binary_codec().decode(registry, buffer_of(std::move(frame)), {});
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, DecodeError::kBadValue);
  EXPECT_NE(decoded.detail.find("version"), std::string::npos);
}

TEST(BinaryCodecTest, UnknownKindIsRejected) {
  serial::TypeRegistry registry;
  register_dynamic_event_type("Quote", {}, registry);
  Bytes frame = binary_codec().encode(registry, DynamicEvent("Quote"));
  frame[1] = 7;
  const CodecResult decoded =
      binary_codec().decode(registry, buffer_of(std::move(frame)), {});
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, DecodeError::kBadValue);
}

TEST(BinaryCodecTest, UnregisteredTypeIsRejected) {
  serial::TypeRegistry registry;  // empty: nothing registered
  util::ByteWriter w;
  w.write_u8(kBinaryEventFrameVersion);
  w.write_u8(kBinaryKindFields);
  w.write_string("Nope");
  w.write_varint(0);
  const CodecResult decoded =
      binary_codec().decode(registry, buffer_of(w.take()), {});
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, DecodeError::kBadValue);
  EXPECT_NE(decoded.detail.find("Nope"), std::string::npos);
}

TEST(BinaryCodecTest, KindMustMatchRegistrationStyle) {
  // A hostile frame must not deliver a field-table event under a
  // statically-typed name (subscribers dynamic_cast on the C++ type), nor
  // an opaque body under a dynamic name.
  serial::TypeRegistry registry;
  serial::register_event_with_ancestors<SkiRental>(registry);
  register_dynamic_event_type("Quote", {}, registry);

  util::ByteWriter fields_as_static;
  fields_as_static.write_u8(kBinaryEventFrameVersion);
  fields_as_static.write_u8(kBinaryKindFields);
  fields_as_static.write_string("SkiRental");
  fields_as_static.write_varint(0);
  const CodecResult a =
      binary_codec().decode(registry, buffer_of(fields_as_static.take()), {});
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.error, DecodeError::kBadValue);

  util::ByteWriter opaque_as_dynamic;
  opaque_as_dynamic.write_u8(kBinaryEventFrameVersion);
  opaque_as_dynamic.write_u8(kBinaryKindOpaque);
  opaque_as_dynamic.write_string("Quote");
  opaque_as_dynamic.write_bytes(Bytes{0x00});
  const CodecResult b =
      binary_codec().decode(registry, buffer_of(opaque_as_dynamic.take()), {});
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.error, DecodeError::kBadValue);
}

TEST(BinaryCodecTest, InflatedFieldCountIsRejectedBeforeAllocation) {
  serial::TypeRegistry registry;
  register_dynamic_event_type("Quote", {}, registry);
  util::ByteWriter w;
  w.write_u8(kBinaryEventFrameVersion);
  w.write_u8(kBinaryKindFields);
  w.write_string("Quote");
  w.write_varint(10000);  // claims 10000 fields, carries none
  const CodecResult decoded =
      binary_codec().decode(registry, buffer_of(w.take()), {});
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, DecodeError::kTruncated);
}

TEST(BinaryCodecTest, FieldPastLengthCapIsClassified) {
  serial::TypeRegistry registry;
  register_dynamic_event_type("Quote", {}, registry);
  DynamicEvent e("Quote");
  e.set("key", std::string(256, 'v'));
  const auto payload = buffer_of(binary_codec().encode(registry, e));
  const CodecResult decoded = binary_codec().decode(
      registry, payload, DecodeLimits{.max_length = 64});
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, DecodeError::kLengthCap);
}

TEST(XmlCodecTest, MalformedPayloadIsClassifiedNotThrown) {
  serial::TypeRegistry registry;
  const CodecResult decoded = xml_codec().decode(
      registry, buffer_of(util::to_bytes("not a tagged event")), {});
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, DecodeError::kBadValue);
  EXPECT_FALSE(decoded.detail.empty());
}

// --- encode cache keys on (event, codec) -------------------------------------

TEST(EncodeCacheCodecTest, SameEventDistinctCodecsDistinctEntries) {
  serial::TypeRegistry registry;
  serial::register_event_with_ancestors<SkiRental>(registry);
  EncodeCache cache(8, obs::Counter());
  const auto e = std::make_shared<const SkiRental>("a", 1.0f, "x", 1.0f);

  const auto xml_bytes = cache.encode(registry, xml_codec(), e);
  const auto bin_bytes = cache.encode(registry, binary_codec(), e);
  EXPECT_NE(*xml_bytes, *bin_bytes);  // different codecs, different bytes
  EXPECT_EQ(cache.hits(), 0u);        // no cross-codec false hit

  EXPECT_EQ(cache.encode(registry, xml_codec(), e).get(), xml_bytes.get());
  EXPECT_EQ(cache.encode(registry, binary_codec(), e).get(),
            bin_bytes.get());
  EXPECT_EQ(cache.hits(), 2u);
}

// --- TpsConfig::Builder knobs ------------------------------------------------

TEST(CodecConfigTest, BuilderSelectsCodec) {
  EXPECT_EQ(TpsConfig{}.codec, "xml");  // default: interoperate first
  EXPECT_EQ(TpsConfig::Builder().codec("binary").build().codec, "binary");
  EXPECT_EQ(TpsConfig::Builder().prefer_binary().build().codec, "binary");
  EXPECT_TRUE(TpsConfig{}.advertise_codecs);
}

TEST(CodecConfigTest, BuilderRejectsUnknownCodecNamingTheKnob) {
  try {
    (void)TpsConfig::Builder().codec("zstd").build();
    FAIL() << "build() accepted an unknown codec";
  } catch (const PsException& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("codec"), std::string::npos) << what;
    EXPECT_NE(what.find("zstd"), std::string::npos) << what;
    EXPECT_NE(what.find("xml, binary"), std::string::npos) << what;
  }
}

TEST(CodecConfigTest, DecodeLimitsStructOverloadMatchesLooseArgs) {
  const TpsConfig via_struct =
      TpsConfig::Builder()
          .decode_limits(DecodeLimits{
              .max_length = 1024, .max_count = 16, .max_depth = 8})
          .build();
  const TpsConfig via_args =
      TpsConfig::Builder().decode_limits(16, 1024, 8).build();
  EXPECT_EQ(via_struct.decode_max_batch_events,
            via_args.decode_max_batch_events);
  EXPECT_EQ(via_struct.decode_max_event_bytes,
            via_args.decode_max_event_bytes);
  EXPECT_EQ(via_struct.decode_max_xml_depth, via_args.decode_max_xml_depth);
  EXPECT_EQ(via_struct.decode_max_batch_events, 16u);
  EXPECT_EQ(via_struct.decode_max_event_bytes, 1024u);
  EXPECT_EQ(via_struct.decode_max_xml_depth, 8u);
}

// --- advertisement capability + negotiation ----------------------------------

TEST(CodecNegotiationTest, LegacyAdvertisementImpliesXmlOnly) {
  TestNet net;
  AdvertisementsCreator creator(net.add_peer("alice"));
  const auto legacy = creator.create_type_advertisement("SkiRental");
  EXPECT_EQ(advertised_codecs(legacy),
            std::vector<std::string>{std::string(kCodecXml)});
  EXPECT_EQ(&negotiate_codec(legacy, binary_codec()), &xml_codec());
  EXPECT_EQ(&negotiate_codec(legacy, xml_codec()), &xml_codec());
}

TEST(CodecNegotiationTest, CapabilityParamListsAndPreferredWins) {
  TestNet net;
  AdvertisementsCreator creator(net.add_peer("alice"));
  const auto adv =
      creator.create_type_advertisement("SkiRental", {"xml", "binary"});
  EXPECT_EQ(advertised_codecs(adv),
            (std::vector<std::string>{"xml", "binary"}));
  EXPECT_EQ(&negotiate_codec(adv, binary_codec()), &binary_codec());
  EXPECT_EQ(&negotiate_codec(adv, xml_codec()), &xml_codec());
}

TEST(CodecNegotiationTest, MismatchNamesBothCodecLists) {
  TestNet net;
  AdvertisementsCreator creator(net.add_peer("alice"));
  const auto adv = creator.create_type_advertisement("SkiRental", {"zstd"});
  try {
    (void)negotiate_codec(adv, binary_codec());
    FAIL() << "negotiate_codec accepted an unspeakable advertisement";
  } catch (const PsException& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("zstd"), std::string::npos) << what;
    EXPECT_NE(what.find("xml, binary"), std::string::npos) << what;
    EXPECT_NE(what.find("PS_SkiRental"), std::string::npos) << what;
  }
}

// --- interop matrix ----------------------------------------------------------
//
// Each case: subscriber comes up first (creates the type advertisement in
// its capability shape), publisher adopts it, one event flows. Delivery
// semantics must be identical in every cell; only tps.codec_fallbacks and
// the wire bytes differ.

struct InteropResult {
  DynamicEvent received{""};
  TpsStats pub_stats;
  TpsStats sub_stats;
};

InteropResult run_interop(const TpsConfig& sub_config,
                          const TpsConfig& pub_config,
                          const std::string& type_name) {
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");

  DynamicTpsInterface sub(alice, type_name, {}, sub_config);
  std::shared_ptr<std::atomic<int>> count =
      std::make_shared<std::atomic<int>>(0);
  auto received = std::make_shared<DynamicEvent>("");
  auto received_mu = std::make_shared<std::mutex>();
  sub.subscribe(
      [count, received, received_mu](const DynamicEvent& e) {
        {
          const std::lock_guard<std::mutex> lock(*received_mu);
          *received = e;  // copy-on-write detaches from the wire buffer
        }
        ++*count;
      },
      [](std::exception_ptr) {});

  TpsConfig patient = pub_config;
  patient.adv_search_timeout = std::chrono::milliseconds(3000);
  DynamicTpsInterface pub(bob, type_name, {}, patient);

  DynamicEvent event(type_name);
  event.set("resort", "Verbier").set("snow_cm", "60");
  pub.publish(event);
  EXPECT_TRUE(wait_until([&] { return count->load() >= 1; }));

  InteropResult out;
  {
    const std::lock_guard<std::mutex> lock(*received_mu);
    out.received = *received;
  }
  out.pub_stats = pub.stats();
  out.sub_stats = sub.stats();
  return out;
}

TEST(CodecInteropTest, BinaryToBinaryDeliversWithoutFallback) {
  const TpsConfig both = TpsConfig::Builder()
                             .adv_search_timeout(std::chrono::milliseconds(300))
                             .prefer_binary()
                             .build();
  const InteropResult r = run_interop(both, both, "InteropBinBin");
  EXPECT_EQ(r.received.get("resort"), "Verbier");
  EXPECT_EQ(r.received.get("snow_cm"), "60");
  EXPECT_EQ(r.pub_stats.codec_fallbacks, 0u);
  EXPECT_EQ(r.sub_stats.codec_fallbacks, 0u);
  EXPECT_EQ(r.sub_stats.received_unique, 1u);
  EXPECT_EQ(r.sub_stats.decode_failures, 0u);
}

TEST(CodecInteropTest, XmlToXmlDeliversWithoutFallback) {
  const InteropResult r =
      run_interop(fast_config(), fast_config(), "InteropXmlXml");
  EXPECT_EQ(r.received.get("resort"), "Verbier");
  EXPECT_EQ(r.pub_stats.codec_fallbacks, 0u);
  EXPECT_EQ(r.sub_stats.codec_fallbacks, 0u);
  EXPECT_EQ(r.sub_stats.received_unique, 1u);
}

TEST(CodecInteropTest, MixedPreferencesInteroperate) {
  // Publisher prefers binary, subscriber prefers xml — but both ADVERTISE
  // both codecs (capability, not preference), so the publisher's binary
  // frames decode fine on the subscriber. No fallback: the negotiated
  // codec is the publisher's preferred one.
  TpsConfig sub_config = fast_config();  // codec = "xml"
  TpsConfig pub_config = fast_config();
  pub_config.codec = std::string(kCodecBinary);
  const InteropResult r =
      run_interop(sub_config, pub_config, "InteropMixed");
  EXPECT_EQ(r.received.get("resort"), "Verbier");
  EXPECT_EQ(r.received.get("snow_cm"), "60");
  EXPECT_EQ(r.pub_stats.codec_fallbacks, 0u);
  EXPECT_EQ(r.sub_stats.received_unique, 1u);
  EXPECT_EQ(r.sub_stats.decode_failures, 0u);
}

TEST(CodecInteropTest, LegacySubscriberForcesXmlFallback) {
  // The subscriber models a pre-codec peer: its advertisement has no
  // tps:codecs param at all (byte-identical to the seed's shape). A
  // binary-preferring publisher must fall back to xml on that binding —
  // and count it.
  TpsConfig legacy = fast_config();
  legacy.advertise_codecs = false;
  TpsConfig modern = fast_config();
  modern.codec = std::string(kCodecBinary);
  const InteropResult r = run_interop(legacy, modern, "InteropLegacySub");
  EXPECT_EQ(r.received.get("resort"), "Verbier");
  EXPECT_EQ(r.received.get("snow_cm"), "60");
  EXPECT_GE(r.pub_stats.codec_fallbacks, 1u);
  EXPECT_EQ(r.sub_stats.received_unique, 1u);
  EXPECT_EQ(r.sub_stats.decode_failures, 0u);
}

TEST(CodecInteropTest, LegacyPublisherReachesModernSubscriber) {
  // The reverse direction: a pre-codec publisher (xml, no capability param
  // on anything it creates) publishing to a binary-preferring subscriber.
  // The subscriber accepts xml frames unconditionally.
  TpsConfig legacy = fast_config();
  legacy.advertise_codecs = false;
  TpsConfig modern = fast_config();
  modern.codec = std::string(kCodecBinary);
  const InteropResult r = run_interop(modern, legacy, "InteropLegacyPub");
  EXPECT_EQ(r.received.get("resort"), "Verbier");
  EXPECT_EQ(r.sub_stats.received_unique, 1u);
  EXPECT_EQ(r.sub_stats.decode_failures, 0u);
}

TEST(CodecInteropTest, BinaryBatchedPublishDelivers) {
  // The async path: batched events ride "tps:batch-bin" when the binding
  // negotiated binary. Exactly-once semantics are codec-independent.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");

  TpsConfig sub_config = TpsConfig::Builder()
                             .adv_search_timeout(std::chrono::milliseconds(300))
                             .prefer_binary()
                             .build();
  DynamicTpsInterface sub(alice, "InteropBatch", {}, sub_config);
  std::shared_ptr<std::atomic<int>> count =
      std::make_shared<std::atomic<int>>(0);
  sub.subscribe([count](const DynamicEvent&) { ++*count; },
                [](std::exception_ptr) {});

  TpsConfig pub_config = TpsConfig::Builder()
                             .adv_search_timeout(std::chrono::milliseconds(3000))
                             .prefer_binary()
                             .batching(16, std::chrono::microseconds(200))
                             .build();
  DynamicTpsInterface pub(bob, "InteropBatch", {}, pub_config);

  constexpr int kEvents = 20;
  for (int i = 0; i < kEvents; ++i) {
    DynamicEvent e("InteropBatch");
    e.set("seq", std::to_string(i));
    pub.publish(e);
  }
  EXPECT_TRUE(wait_until([&] { return count->load() >= kEvents; }));
  EXPECT_EQ(count->load(), kEvents);  // exactly once, no duplicates
  EXPECT_EQ(sub.stats().decode_failures, 0u);
}

TEST(CodecInteropTest, StaticEventsFlowThroughBinaryCodec) {
  // Statically-typed events take the kind-0 (opaque EventTraits) path.
  TestNet net;
  jxta::Peer& alice = net.add_peer("alice");
  jxta::Peer& bob = net.add_peer("bob");

  TpsConfig config = TpsConfig::Builder()
                         .adv_search_timeout(std::chrono::milliseconds(300))
                         .prefer_binary()
                         .build();
  TpsEngine<SkiRental> sub_engine(alice, config);
  auto sub = sub_engine.new_interface();
  std::shared_ptr<std::atomic<int>> count =
      std::make_shared<std::atomic<int>>(0);
  auto callback = make_callback<SkiRental>(
      [count](const SkiRental& e) {
        EXPECT_EQ(e.shop(), "shop");
        ++*count;
      });
  sub.subscribe(callback, ignore_exceptions<SkiRental>());

  TpsConfig patient = config;
  patient.adv_search_timeout = std::chrono::milliseconds(3000);
  TpsEngine<SkiRental> pub_engine(bob, patient);
  auto pub = pub_engine.new_interface();
  pub.publish(SkiRental("shop", 1.0f, "brand", 2.0f));
  EXPECT_TRUE(wait_until([&] { return count->load() >= 1; }));
  EXPECT_EQ(pub.stats().codec_fallbacks, 0u);
  EXPECT_EQ(sub.stats().decode_failures, 0u);
}

}  // namespace
}  // namespace p2p::tps
