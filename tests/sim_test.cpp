// The virtual-time scenario harness: determinism regression (same seed =>
// byte-identical run signature), plus the per-scenario invariants at sizes
// small enough for the test suite.

#include "sim/scenarios.h"

#include <gtest/gtest.h>

#include "jxta/wire.h"
#include "sim/sim_world.h"

namespace p2p::sim {
namespace {

using std::chrono::milliseconds;

jxta::PipeAdvertisement topic(const std::string& name) {
  jxta::PipeAdvertisement adv;
  adv.pid = jxta::PipeId::derive(name);
  adv.name = name;
  adv.type = jxta::PipeAdvertisement::Type::kPropagate;
  return adv;
}

TEST(SimWorldTest, VirtualTimeAdvancesWithoutWallClock) {
  SimWorld world(1);
  EXPECT_EQ(world.now_ms(), 0);
  int fired = 0;
  world.at(milliseconds(250), [&] { ++fired; });
  world.run_for(milliseconds(1000));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(world.now_ms(), 1000);
}

TEST(SimWorldTest, SingleThreadedPeersTalkOverTheFabric) {
  SimWorld world(2);
  jxta::PeerConfig rdv;
  rdv.name = "rdv";
  rdv.rendezvous = true;
  rdv.announce_on_start = false;
  world.add_peer(rdv);

  jxta::PeerConfig edge;
  edge.name = "edge";
  edge.seed_rendezvous = {net::Address("inproc", "rdv")};
  edge.announce_on_start = false;
  auto& sub = world.add_peer(edge);

  const auto t = topic("sim-smoke");
  auto in = sub.net_group().wire().create_input_pipe(t);
  int got = 0;
  in->set_listener([&](jxta::Message) { ++got; });

  jxta::PeerConfig pub_cfg;
  pub_cfg.name = "pub";
  pub_cfg.seed_rendezvous = {net::Address("inproc", "rdv")};
  pub_cfg.announce_on_start = false;
  auto& pub = world.add_peer(pub_cfg);
  world.run_for(milliseconds(2000));  // leases

  auto out = pub.net_group().wire().create_output_pipe(t);
  jxta::Message m;
  m.add_string("k", "v");
  out->send(std::move(m));
  world.run_for(milliseconds(1000));
  EXPECT_EQ(got, 1);
  in->close();
  out->close();
}

TEST(SimWorldTest, DuplicatePeerNameThrows) {
  SimWorld world(3);
  jxta::PeerConfig config;
  config.name = "twin";
  config.announce_on_start = false;
  world.add_peer(config);
  EXPECT_THROW(world.add_peer(config), util::InvalidArgument);
}

TEST(ScenarioTest, FlashCrowdDeliversExactlyOnce) {
  FlashCrowdOptions opt;
  opt.subscribers = 50;
  opt.rendezvous = 2;
  const ScenarioResult r = run_flash_crowd(opt);
  EXPECT_TRUE(r.ok()) << r.to_json();
  EXPECT_EQ(r.metrics.at("delivered"), r.metrics.at("expected"));
}

TEST(ScenarioTest, LossBurstDegradesButDoesNotBlackOut) {
  LossBurstOptions opt;
  opt.subscribers = 30;
  const ScenarioResult r = run_loss_burst(opt);
  EXPECT_TRUE(r.ok()) << r.to_json();
  EXPECT_EQ(r.metrics.at("clean_delivered"), r.metrics.at("clean_expected"));
  EXPECT_GT(r.metrics.at("burst_delivered"), 0);
  EXPECT_LT(r.metrics.at("burst_delivered"), r.metrics.at("burst_expected"));
}

TEST(ScenarioTest, FirewalledPeersStillGetEveryPublish) {
  FirewallOptions opt;
  opt.subscribers = 40;
  const ScenarioResult r = run_firewall(opt);
  EXPECT_TRUE(r.ok()) << r.to_json();
  EXPECT_EQ(r.metrics.at("firewalled"), 20);
}

TEST(ScenarioTest, KadLookupsConvergeWithBoundedHops) {
  KadConvergenceOptions opt;
  opt.peers = 32;
  opt.lookups = 8;
  const ScenarioResult r = run_kad_convergence(opt);
  EXPECT_TRUE(r.ok()) << r.to_json();
  EXPECT_EQ(r.metrics.at("completed"), 8);
  EXPECT_GT(r.metrics.at("hits"), 0);
}

TEST(ScenarioTest, ChurnKeepsDeliveringAndNeverHitsGhosts) {
  ChurnOptions opt;
  opt.peers = 60;
  opt.duration_ms = 30'000;
  const ScenarioResult r = run_churn(opt);
  EXPECT_TRUE(r.ok()) << r.to_json();
  EXPECT_GT(r.metrics.at("leaves"), 0);
}

// The headline regression: a 500-peer churn run replayed with the same
// seed must produce the byte-identical deterministic signature — same
// trace hash, same metrics, same virtual timeline. A different seed must
// not (it shifts every session length and join offset).
TEST(ScenarioTest, ChurnIsDeterministicPerSeed) {
  ChurnOptions opt;
  opt.peers = 500;
  const ScenarioResult a = run_churn(opt);
  const ScenarioResult b = run_churn(opt);
  EXPECT_TRUE(a.ok()) << a.to_json();
  EXPECT_EQ(a.determinism_key(), b.determinism_key());
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.trace_events, b.trace_events);

  ChurnOptions other = opt;
  other.seed = opt.seed + 1;
  const ScenarioResult c = run_churn(other);
  EXPECT_NE(a.determinism_key(), c.determinism_key());
}

TEST(ScenarioTest, FlashCrowdIsDeterministicPerSeed) {
  FlashCrowdOptions opt;
  opt.subscribers = 100;
  const ScenarioResult a = run_flash_crowd(opt);
  const ScenarioResult b = run_flash_crowd(opt);
  EXPECT_EQ(a.determinism_key(), b.determinism_key());
  EXPECT_EQ(a.trace_hash, b.trace_hash);

  FlashCrowdOptions other = opt;
  other.seed = opt.seed + 1;
  const ScenarioResult c = run_flash_crowd(other);
  EXPECT_NE(a.trace_hash, c.trace_hash);
}

TEST(ScenarioTest, DeterminismKeyExcludesWallMeasurements) {
  FlashCrowdOptions opt;
  opt.subscribers = 10;
  ScenarioResult r = run_flash_crowd(opt);
  const std::string key = r.determinism_key();
  r.wall_seconds = 123.0;
  r.rss_mb = 456.0;
  EXPECT_EQ(r.determinism_key(), key);  // wall/rss never leak into the key
  EXPECT_NE(r.to_json(), key);          // but the full dump carries them
}

}  // namespace
}  // namespace p2p::sim
