// Fuzz target: the binary codec's event-frame decoder. The tps:event-bin
// element (and every tps:batch-bin payload) is peer-supplied bytes; decode
// must be total (classified error result, no throw), must respect the
// caps, and — because kind-1 frames decode in place — every field view of
// a decoded event must point inside the pinned payload buffer.
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>

#include "serial/type_registry.h"
#include "tps/codec.h"
#include "tps/event.h"

namespace {

// One registry shared across iterations: a dynamic type (field-table
// frames), a static one is not linked here — unknown names must be
// rejected, which the fuzzer exercises constantly.
const p2p::serial::TypeRegistry& registry() {
  static const auto* r = [] {
    auto* reg = new p2p::serial::TypeRegistry();
    p2p::tps::register_dynamic_event_type("FuzzEvent", {}, *reg);
    return reg;
  }();
  return *r;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto payload = std::make_shared<const p2p::util::Bytes>(data,
                                                                data + size);
  const p2p::util::DecodeLimits limits{
      .max_length = 1 << 20, .max_count = 4096, .max_depth = 16};
  try {
    const p2p::tps::CodecResult result =
        p2p::tps::binary_codec().decode(registry(), payload, limits);
    if (result.ok()) {
      if (result.event == nullptr) std::abort();
      const auto* dyn =
          dynamic_cast<const p2p::tps::DynamicEvent*>(result.event.get());
      if (dyn != nullptr) {
        // Decode-in-place invariant: every view lies within the payload.
        const char* lo = reinterpret_cast<const char*>(payload->data());
        const char* hi = lo + payload->size();
        for (const auto& [key, value] : dyn->fields()) {
          if (key.data() < lo || key.data() + key.size() > hi) std::abort();
          if (!value.empty() &&
              (value.data() < lo || value.data() + value.size() > hi)) {
            std::abort();
          }
        }
      }
    } else if (result.error == p2p::util::DecodeError::kNone) {
      std::abort();  // failures must be classified
    }
  } catch (...) {
    std::abort();  // Codec::decode must not throw
  }
  return 0;
}
