// Fuzz target: tps::try_decode_batch_frame. The tps:batch element is a
// peer-supplied binary frame; decode must be total (error result, no
// throw) and must not amplify a small frame into a large allocation.
#include <cstdint>
#include <cstdlib>
#include <span>

#include "tps/batch.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> frame(data, size);
  try {
    const p2p::tps::BatchLimits limits{.max_events = 4096,
                                       .max_event_bytes = 1 << 20};
    const auto result = p2p::tps::try_decode_batch_frame(frame, limits);
    if (result.ok()) {
      // Decoded payload bytes are bounded by the input frame.
      std::size_t total = 0;
      for (const auto& item : result.items) total += item.payload.size();
      if (total > size) std::abort();
    }
  } catch (...) {
    std::abort();  // try_decode_batch_frame must not throw
  }
  return 0;
}
