// Fuzz target: net::Address::parse. The source-address text inside every
// TCP frame is peer-supplied; parse must be total over arbitrary text.
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "net/address.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const auto addr = p2p::net::Address::parse(text);
    if (addr) {
      // Round-trip: printing a parsed address must re-parse equal.
      const auto again = p2p::net::Address::parse(addr->to_string());
      if (!again || again->to_string() != addr->to_string()) std::abort();
    }
  } catch (...) {
    std::abort();  // Address::parse must not throw
  }
  return 0;
}
