// Fuzz target: util::ByteReader itself — an op-stream interpreter. The
// first bytes pick a sequence of reads; the rest is the buffer under
// read. Checks the core reader invariants both surfaces rely on:
//   * try_read_* never throws, never reads past the view;
//   * errors are sticky: after a failure every later read fails;
//   * the throwing wrappers fail exactly when the try_ surface does.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>

#include "util/bytes.h"
#include "util/error.h"

namespace {

bool run_op(p2p::util::ByteReader& r, std::uint8_t op) {
  using p2p::util::Bytes;
  switch (op % 12) {
    case 0: {
      std::uint8_t v;
      return r.try_read_u8(v);
    }
    case 1: {
      std::uint16_t v;
      return r.try_read_u16(v);
    }
    case 2: {
      std::uint32_t v;
      return r.try_read_u32(v);
    }
    case 3: {
      std::uint64_t v;
      return r.try_read_u64(v);
    }
    case 4: {
      std::int64_t v;
      return r.try_read_i64(v);
    }
    case 5: {
      double v;
      return r.try_read_f64(v);
    }
    case 6: {
      std::uint64_t v;
      return r.try_read_varint(v);
    }
    case 7: {
      bool v;
      return r.try_read_bool(v);
    }
    case 8: {
      std::string v;
      return r.try_read_string(v);
    }
    case 9: {
      Bytes v;
      return r.try_read_bytes(v);
    }
    case 10: {
      Bytes v;
      return r.try_read_raw(op, v);
    }
    default: {
      std::uint64_t v;
      return r.try_read_count(v);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;
  const std::size_t n_ops = std::min<std::size_t>(data[0], size - 1);
  const std::span<const std::uint8_t> ops(data + 1, n_ops);
  const std::span<const std::uint8_t> buf(data + 1 + n_ops,
                                          size - 1 - n_ops);
  const p2p::util::DecodeLimits limits{
      .max_length = 4096, .max_count = 256, .max_depth = 8};
  p2p::util::ByteReader a(buf, limits);
  p2p::util::ByteReader b(buf, limits);
  bool failed = false;
  for (const std::uint8_t op : ops) {
    bool ok = false;
    try {
      ok = run_op(a, op);
    } catch (...) {
      std::abort();  // the try_ surface must not throw
    }
    if (failed && ok) std::abort();  // errors must be sticky
    if (!ok) failed = true;
    if (a.ok() == failed) std::abort();  // ok() tracks the surface
    // The throwing surface over an identical reader must agree.
    bool threw = false;
    try {
      (void)run_op(b, op);  // b uses try_ too; drive its throwing twin
    } catch (...) {
      std::abort();
    }
    try {
      if (failed) (void)b.read_u8();  // any read on a failed reader throws
    } catch (const p2p::util::ParseError&) {
      threw = true;
    } catch (...) {
      std::abort();  // only ParseError may come out
    }
    if (failed && !threw) std::abort();
  }
  return 0;
}
