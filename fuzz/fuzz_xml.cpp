// Fuzz target: xml::try_parse. Peer advertisements and XML-marshalled TPS
// events cross this parser; arbitrary text must yield a document or a
// classified error — never a crash, a throw, or unbounded recursion.
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "xml/xml.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    // Tight limits keep iterations fast and probe the cap paths.
    const p2p::xml::ParseLimits limits{.max_depth = 32,
                                       .max_input = 1 << 20};
    std::string error;
    const auto doc = p2p::xml::try_parse(text, limits, &error);
    if (doc) {
      // A document that parsed must serialize and re-parse to itself
      // (round-trip stability is what the registry decode path relies on).
      const std::string out = p2p::xml::write(*doc);
      if (!p2p::xml::try_parse(out, limits)) std::abort();
    }
  } catch (...) {
    std::abort();  // try_parse must not throw
  }
  return 0;
}
