// Fuzz target: net::FrameAssembler under arbitrary TCP segmentation. The
// first byte of the input drives the segment-split schedule, the rest is
// the stream — so the fuzzer explores reassembly across every chunking the
// network could produce, including one-byte feeds across header
// boundaries.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <span>

#include "net/framing.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t split_seed = data[0];
  const std::span<const std::uint8_t> stream(data + 1, size - 1);
  try {
    p2p::net::FrameAssembler assembler(1 << 20);
    std::size_t off = 0;
    std::uint32_t rng = split_seed | 0x100U;  // never zero
    while (off < stream.size()) {
      rng = rng * 1664525U + 1013904223U;
      const std::size_t chunk =
          std::min<std::size_t>(rng % 97 + 1, stream.size() - off);
      assembler.feed(stream.subspan(off, chunk));
      off += chunk;
      while (auto frame = assembler.next()) {
        // Whatever reassembled must re-encode to a decodable frame.
        const auto wire = p2p::net::FrameAssembler::encode(frame->src_text,
                                                           frame->payload);
        p2p::net::FrameAssembler check;
        check.feed(wire);
        const auto again = check.next();
        if (!again || again->src_text != frame->src_text ||
            again->payload != frame->payload) {
          std::abort();
        }
      }
      if (assembler.corrupt()) {
        // A corrupt stream stays corrupt and buffers nothing.
        if (assembler.buffered() != 0) std::abort();
        assembler.feed(stream.subspan(0, std::min<std::size_t>(
                                             8, stream.size())));
        if (assembler.next() || !assembler.corrupt()) std::abort();
        break;
      }
    }
  } catch (...) {
    std::abort();  // the assembler must not throw
  }
  return 0;
}
