// Fallback driver for toolchains without libFuzzer (gcc): replays corpus
// files passed as arguments, then — when P2P_FUZZ_ITERS is set — runs a
// deterministic xorshift mutation loop over the replayed corpus. Not
// coverage-guided; exists so the harnesses build and run everywhere.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& base,
                                 std::uint64_t& rng) {
  std::vector<std::uint8_t> out = base;
  if (out.empty()) out.push_back(0);
  switch (xorshift(rng) % 4) {
    case 0:  // flip bytes
      for (int i = 0; i < 4; ++i) {
        out[xorshift(rng) % out.size()] =
            static_cast<std::uint8_t>(xorshift(rng));
      }
      break;
    case 1:  // truncate
      out.resize(xorshift(rng) % out.size());
      break;
    case 2: {  // insert a run
      const std::size_t at = xorshift(rng) % (out.size() + 1);
      const std::size_t n = xorshift(rng) % 16 + 1;
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(at), n,
                 static_cast<std::uint8_t>(xorshift(rng)));
      break;
    }
    default: {  // splice with itself
      const std::size_t at = xorshift(rng) % out.size();
      out.insert(out.end(), out.begin() + static_cast<std::ptrdiff_t>(at),
                 out.end());
      break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::vector<std::uint8_t>> corpus;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // ignore libFuzzer-style flags
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "skipping unreadable %s\n", argv[i]);
      continue;
    }
    std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>()};
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    corpus.push_back(std::move(bytes));
  }
  std::printf("replayed %zu corpus file(s)\n", corpus.size());

  const char* iters_env = std::getenv("P2P_FUZZ_ITERS");
  if (iters_env == nullptr) return 0;
  const long iters = std::atol(iters_env);
  if (corpus.empty()) corpus.push_back({0x00});
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  for (long i = 0; i < iters; ++i) {
    const auto input = mutate(corpus[static_cast<std::size_t>(i) %
                                     corpus.size()],
                              rng);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("ran %ld mutation iteration(s)\n", iters);
  return 0;
}
