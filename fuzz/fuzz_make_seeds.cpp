// Writes seed corpora for every fuzz target, using the library's own
// encoders — the same frozen frames tests/wire_format_test.cpp pins. Run:
//
//   fuzz_make_seeds <corpus-root>
//
// creates <corpus-root>/{xml,batch,binary_event,message,framing,kad_frame,
// address,bytereader}/
// with a handful of well-formed (and near-well-formed) inputs each, so a
// fuzzer starts from the interesting region of the input space instead of
// random bytes.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "jxta/endpoint.h"
#include "jxta/kad_wire.h"
#include "jxta/message.h"
#include "net/framing.h"
#include "tps/batch.h"
#include "tps/codec.h"
#include "tps/event.h"
#include "util/bytes.h"
#include "util/uuid.h"

namespace {

namespace fs = std::filesystem;

void put(const fs::path& dir, const std::string& name,
         std::span<const std::uint8_t> bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void put_text(const fs::path& dir, const std::string& name,
              std::string_view text) {
  put(dir, name, p2p::util::to_bytes(text));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];

  // --- xml: advertisement-shaped documents -------------------------------
  put_text(root / "xml", "peer_adv",
           "<jxta:PA><PID>urn:jxta:uuid-59616261</PID>"
           "<Name>peer-0</Name><Svc><MCID>builtin:wire</MCID>"
           "<Parm type=\"tcp\">tcp://127.0.0.1:5001</Parm></Svc>"
           "</jxta:PA>");
  put_text(root / "xml", "nested",
           "<a><b><c attr=\"1\"><d>&lt;&amp;&gt;&#65;</d></c></b></a>");
  put_text(root / "xml", "comment_cdata",
           "<doc><!-- c --><x>&quot;t&quot;</x></doc>");

  // --- batch: tps:batch frames ------------------------------------------
  {
    const auto payload = std::make_shared<const p2p::util::Bytes>(
        p2p::util::to_bytes("<ev><n>1</n></ev>"));
    std::vector<p2p::tps::BatchItem> items;
    items.push_back({p2p::util::Uuid::generate(), payload});
    items.push_back({p2p::util::Uuid::generate(), payload});
    put(root / "batch", "two_events",
        p2p::tps::encode_batch_frame(items));
    items.resize(1);
    put(root / "batch", "one_event",
        p2p::tps::encode_batch_frame(items));
    put(root / "batch", "empty", p2p::tps::encode_batch_frame({}));
  }

  // --- binary_event: tps:event-bin frames (both kinds) -------------------
  {
    p2p::serial::TypeRegistry registry;
    p2p::tps::register_dynamic_event_type("FuzzEvent", {}, registry);
    p2p::tps::DynamicEvent fields("FuzzEvent");
    fields.set("key", "value").set("n", "42");
    put(root / "binary_event", "field_table",
        p2p::tps::binary_codec().encode(registry, fields));
    put(root / "binary_event", "no_fields",
        p2p::tps::binary_codec().encode(registry,
                                        p2p::tps::DynamicEvent("FuzzEvent")));
    // An opaque (kind 0) frame for a type the harness does NOT register:
    // steers the fuzzer at the unknown-type and kind-mismatch rejects.
    p2p::util::ByteWriter w;
    w.write_u8(p2p::tps::kBinaryEventFrameVersion);
    w.write_u8(p2p::tps::kBinaryKindOpaque);
    w.write_string("FuzzEvent");
    w.write_bytes(p2p::util::to_bytes("body"));
    put(root / "binary_event", "opaque_kind", w.take());
  }

  // --- message: jxta::Message and endpoint envelopes ---------------------
  {
    p2p::jxta::Message msg;
    msg.add_string("tps:type", "news");
    msg.add_bytes("tps:payload", p2p::util::to_bytes("<n>1</n>"));
    msg.add_string("obs:trace-id", "0123456789abcdef");
    put(root / "message", "tps_event", msg.serialize());

    p2p::jxta::EndpointMessage env;
    env.service = "jxta.resolver";
    env.payload = msg.serialize();
    put(root / "message", "endpoint_envelope", env.serialize());
  }

  // --- framing: TCP stream chunks (split seed byte + frames) -------------
  {
    const auto payload = p2p::util::to_bytes("hello");
    auto one = p2p::net::FrameAssembler::encode("tcp://127.0.0.1:5001",
                                                payload);
    p2p::util::Bytes stream;
    stream.push_back(0x07);  // split schedule seed
    stream.insert(stream.end(), one.begin(), one.end());
    stream.insert(stream.end(), one.begin(), one.end());
    put(root / "framing", "two_frames", stream);
    one.resize(one.size() / 2);
    stream.assign(1, 0x31);
    stream.insert(stream.end(), one.begin(), one.end());
    put(root / "framing", "half_frame", stream);
  }

  // --- kad_frame: Kademlia RPC frames (one per op) -----------------------
  {
    using p2p::jxta::KadFrame;
    using p2p::jxta::KadOp;
    KadFrame ping;
    ping.op = KadOp::kPing;
    put(root / "kad_frame", "ping", p2p::jxta::encode_kad_frame(ping));

    KadFrame find;
    find.op = KadOp::kFindValue;
    find.key = p2p::util::Uuid::derive("kad-seed-key");
    put(root / "kad_frame", "find_value", p2p::jxta::encode_kad_frame(find));
    find.op = KadOp::kFindNode;
    put(root / "kad_frame", "find_node", p2p::jxta::encode_kad_frame(find));

    KadFrame store;
    store.op = KadOp::kStore;
    store.key = find.key;
    store.adv_type = 1;
    store.records = {{"<jxta:PeerGroupAdvertisement><Name>ps.seed</Name>"
                      "</jxta:PeerGroupAdvertisement>",
                      60'000}};
    put(root / "kad_frame", "store", p2p::jxta::encode_kad_frame(store));
    store.op = KadOp::kValue;
    put(root / "kad_frame", "value", p2p::jxta::encode_kad_frame(store));

    KadFrame nodes;
    nodes.op = KadOp::kNodes;
    nodes.key = find.key;
    p2p::jxta::KadContact contact;
    contact.id = p2p::jxta::PeerId{p2p::util::Uuid::derive("kad-seed-peer")};
    contact.addresses = {*p2p::net::Address::parse("inproc://peer-7"),
                         *p2p::net::Address::parse("tcp://127.0.0.1:5001")};
    nodes.contacts = {contact};
    put(root / "kad_frame", "nodes", p2p::jxta::encode_kad_frame(nodes));
  }

  // --- address -----------------------------------------------------------
  put_text(root / "address", "tcp", "tcp://127.0.0.1:5001");
  put_text(root / "address", "inproc", "inproc://peer-7");
  put_text(root / "address", "junk", "tcp://:::not-an-address");

  // --- bytereader: [n_ops][ops][buffer] ----------------------------------
  {
    p2p::util::ByteWriter w;
    w.write_varint(300);
    w.write_string("abc");
    w.write_u64(0xffffffffffffffffULL);
    w.write_i64(-1);
    const auto buf = w.take();
    p2p::util::Bytes seed;
    seed.push_back(4);                       // four ops
    for (std::uint8_t op : {6, 8, 3, 4}) seed.push_back(op);
    seed.insert(seed.end(), buf.begin(), buf.end());
    put(root / "bytereader", "mixed_stream", seed);
  }

  std::printf("seed corpora written under %s\n", root.string().c_str());
  return 0;
}
