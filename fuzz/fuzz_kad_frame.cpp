// Fuzz target: jxta::try_decode_kad_frame. Kademlia RPC frames arrive from
// arbitrary peers on the "jxta.kad" resolver handler; decode must be total
// (classified error result, no throw), must cap counts before allocating,
// and a frame that decodes must re-encode to bytes that decode to the same
// frame (round-trip stability — the encoder and decoder agree).
#include <cstdint>
#include <cstdlib>
#include <span>

#include "jxta/kad_wire.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> frame(data, size);
  try {
    const auto result = p2p::jxta::try_decode_kad_frame(frame);
    if (result.ok) {
      // The caps held: nothing decoded past them.
      const p2p::jxta::KadLimits limits;
      if (result.frame.records.size() > limits.max_records) std::abort();
      if (result.frame.contacts.size() > limits.max_contacts) std::abort();
      for (const auto& c : result.frame.contacts) {
        if (c.addresses.size() > limits.max_addresses) std::abort();
      }
      // Round-trip stability: re-encode, re-decode, compare.
      const auto bytes = p2p::jxta::encode_kad_frame(result.frame);
      const auto again = p2p::jxta::try_decode_kad_frame(bytes);
      if (!again.ok) std::abort();
      if (again.frame.op != result.frame.op ||
          again.frame.key != result.frame.key ||
          again.frame.adv_type != result.frame.adv_type ||
          again.frame.records != result.frame.records ||
          again.frame.contacts != result.frame.contacts) {
        std::abort();
      }
    }
  } catch (...) {
    std::abort();  // try_decode_kad_frame must not throw
  }
  return 0;
}
