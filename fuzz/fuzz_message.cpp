// Fuzz target: the layered message decode a datagram actually crosses —
// EndpointMessage::try_deserialize, then jxta::Message::try_deserialize on
// the inner payload (the same nesting the endpoint receive path performs).
#include <cstdint>
#include <cstdlib>
#include <span>

#include "jxta/endpoint.h"
#include "jxta/message.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  try {
    p2p::util::DecodeError error = p2p::util::DecodeError::kNone;
    const auto env = p2p::jxta::EndpointMessage::try_deserialize(bytes,
                                                                 &error);
    if (env) {
      const p2p::util::DecodeLimits limits{.max_length = 1 << 20,
                                           .max_count = 4096};
      const auto msg =
          p2p::jxta::Message::try_deserialize(env->payload, limits);
      if (msg) {
        // Round-trip: a message that decoded must re-encode and decode
        // back (the pipe fan-out re-serializes messages it forwards).
        const auto wire = msg->serialize();
        if (!p2p::jxta::Message::try_deserialize(wire)) std::abort();
      }
    }
    // The raw bytes may also be a bare Message (wire/pipe listeners).
    (void)p2p::jxta::Message::try_deserialize(bytes);
  } catch (...) {
    std::abort();  // try_deserialize must not throw
  }
  return 0;
}
